"""Tests for the work/span cost model (machine-independent measurements)."""

from repro.interp.interpreter import Interpreter
from repro.lang.parser import parse_program
from repro.lang.prelude import merge_with_prelude


def measure(program, fname, args):
    prog = merge_with_prelude(parse_program(program))
    return Interpreter(prog).run(fname, args)


class TestWork:
    def test_scalar_work(self):
        _, c = measure("fun f(a, b) = a + b * b", "f", [2, 3])
        assert c.work == 2  # one mul, one add

    def test_range_work_linear(self):
        _, c1 = measure("fun f(n) = [1..n]", "f", [10])
        _, c2 = measure("fun f(n) = [1..n]", "f", [100])
        assert c2.work > c1.work
        assert c2.work >= 100

    def test_iterator_work_sums_over_elements(self):
        _, c = measure("fun f(n) = [i <- [1..n]: i * i]", "f", [50])
        # 50 muls + range + iterator assembly
        assert c.work >= 100


class TestSpan:
    def test_iterator_span_is_max_not_sum(self):
        # body work grows with n, but body span is constant, so total span
        # must stay (nearly) flat while work grows linearly
        src = "fun f(n) = [i <- [1..n]: i * i + 1]"
        _, small = measure(src, "f", [8])
        _, big = measure(src, "f", [512])
        assert big.work > 32 * small.work
        assert big.span == small.span

    def test_sequential_recursion_span_linear(self):
        src = "fun s(n) = if n == 0 then 0 else n + s(n - 1)"
        _, c1 = measure(src, "s", [10])
        _, c2 = measure(src, "s", [100])
        assert c2.span > 5 * c1.span

    def test_parallel_reduce_span_logarithmic(self):
        # prelude reduce halves the problem each level: span ~ log n
        _, c1 = measure("", "reduce", [__import__("repro.interp.values", fromlist=["FunVal"]).FunVal("add"), list(range(1, 65))])
        _, c2 = measure("", "reduce", [__import__("repro.interp.values", fromlist=["FunVal"]).FunVal("add"), list(range(1, 1025))])
        # 16x the data -> span grows by ~4 levels, far less than 16x
        assert c2.span < 3 * c1.span
        assert c2.work > 10 * c1.work

    def test_concurrency_reported(self):
        _, c = measure("fun f(n) = [i <- [1..n]: i + 1]", "f", [100])
        assert c.concurrency > 1.0

    def test_str(self):
        _, c = measure("fun f(n) = n + 1", "f", [1])
        assert "work=" in str(c) and "span=" in str(c)
