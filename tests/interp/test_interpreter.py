"""Unit tests for the reference interpreter (semantics of every construct
and primitive of Tables 1 and 2)."""

import pytest

from repro.errors import EvalError
from repro.interp.interpreter import Interpreter, PRIM_IMPLS
from repro.lang.parser import parse_expression, parse_program
from repro.lang.prelude import merge_with_prelude


def ev(src, env=None, program=""):
    prog = merge_with_prelude(parse_program(program))
    it = Interpreter(prog)
    return it.eval_expression(parse_expression(src), env or {})


def run(program, fname, args):
    prog = merge_with_prelude(parse_program(program))
    return Interpreter(prog).call(fname, args)


class TestScalars:
    @pytest.mark.parametrize("src,expected", [
        ("1 + 2", 3), ("5 - 8", -3), ("3 * 4", 12),
        ("7 div 2", 3), ("7 mod 2", 1), ("-3", -3),
        ("1 == 1", True), ("1 != 1", False),
        ("2 < 3", True), ("3 <= 3", True), ("4 > 5", False), ("5 >= 5", True),
        ("true and false", False), ("true or false", True), ("not true", False),
        ("max2(3, 7)", 7), ("min2(3, 7)", 3), ("abs_(-4)", 4),
    ])
    def test_ops(self, src, expected):
        assert ev(src) == expected

    def test_div_by_zero(self):
        with pytest.raises(EvalError):
            ev("1 div 0")

    def test_mod_by_zero(self):
        with pytest.raises(EvalError):
            ev("1 mod 0")

    def test_div_semantics_floor(self):
        assert ev("-7 div 2") == -4
        assert ev("-7 mod 2") == 1


class TestSequencePrimitives:
    def test_seq_literal(self):
        assert ev("[1, 2, 3]") == [1, 2, 3]

    def test_length(self):
        assert ev("#[1, 2, 3]") == 3
        assert ev("#[]") == 0

    def test_range_inclusive(self):
        assert ev("[2 .. 5]") == [2, 3, 4, 5]

    def test_range_empty(self):
        assert ev("[5 .. 4]") == []

    def test_range1(self):
        assert ev("range1(4)") == [1, 2, 3, 4]
        assert ev("range1(0)") == []

    def test_index_origin_one(self):
        # paper: "V[1][2] is the second element of the first sequence"
        assert ev("[[10, 20], [30]][1][2]") == 20

    def test_index_out_of_range(self):
        with pytest.raises(EvalError):
            ev("[1, 2][3]")
        with pytest.raises(EvalError):
            ev("[1, 2][0]")

    def test_update(self):
        assert ev("seq_update([1, 2, 3], 2, 9)") == [1, 9, 3]

    def test_update_is_applicative(self):
        prog = "fun f(v) = let w = seq_update(v, 1, 9) in (v[1], w[1])"
        assert run(prog, "f", [[1, 2]]) == (1, 9)

    def test_restrict(self):
        assert ev("restrict([1,2,3,4], [true,false,true,false])") == [1, 3]

    def test_restrict_length_mismatch(self):
        with pytest.raises(EvalError):
            ev("restrict([1,2], [true])")

    def test_combine(self):
        # paper law: restrict(combine(M,V,U), M) == V
        assert ev("combine([true,false,false,true], [1,2], [7,8])") == [1, 7, 8, 2]

    def test_combine_length_mismatch(self):
        with pytest.raises(EvalError):
            ev("combine([true], [1], [2])")

    def test_dist_scalar(self):
        assert ev("dist(7, 3)") == [7, 7, 7]

    def test_dist_zero(self):
        assert ev("dist(7, 0)") == []

    def test_dist_sequence_value(self):
        assert ev("dist([1,2], 2)") == [[1, 2], [1, 2]]

    def test_distribute_matches_paper(self):
        # Table 2: "dist replicates values in the first sequence by the
        # corresponding value in the second".  (The paper's printed example
        # shows [4,4,4] for count 2 — a typo; the definition gives [4,4].)
        assert ev("distribute([3,4,5], [3,2,1])") == [[3, 3, 3], [4, 4], [5]]


class TestExtendedPrimitives:
    def test_flatten(self):
        assert ev("flatten([[1,2],[],[3]])") == [1, 2, 3]

    def test_concat(self):
        assert ev("concat([1], [2, 3])") == [1, 2, 3]

    def test_sum(self):
        assert ev("sum([1,2,3])") == 6
        assert ev("sum([])") == 0

    def test_maxval_minval(self):
        assert ev("maxval([3,9,2])") == 9
        assert ev("minval([3,9,2])") == 2

    def test_maxval_empty_errors(self):
        with pytest.raises(EvalError):
            ev("maxval([])")

    def test_any_all(self):
        assert ev("anytrue([false, true])") is True
        assert ev("alltrue([false, true])") is False
        assert ev("anytrue([])") is False
        assert ev("alltrue([])") is True

    def test_plus_scan_exclusive(self):
        assert ev("plus_scan([1,2,3,4])") == [0, 1, 3, 6]

    def test_max_scan_inclusive(self):
        assert ev("max_scan([3,1,4,1,5])") == [3, 3, 4, 4, 5]


class TestIterators:
    def test_basic(self):
        assert ev("[i <- [1..4]: i * i]") == [1, 4, 9, 16]

    def test_iterator_over_value_domain(self):
        assert ev("[x <- [5, 1, 2]: x + 10]") == [15, 11, 12]

    def test_semantics_per_element(self):
        # definition: [x <- d: e][k] == e[x := d[k]]
        d = [3, 1, 4]
        got = ev("[x <- [3, 1, 4]: x * x + 1]")
        assert got == [x * x + 1 for x in d]

    def test_filtered(self):
        assert ev("[i <- [1..10] | odd(i): i]") == [1, 3, 5, 7, 9]

    def test_filter_then_body(self):
        assert ev("[i <- [1..6] | even(i): i * i]") == [4, 16, 36]

    def test_nested(self):
        assert ev("[i <- [1..3]: [j <- [1..i]: i]]") == [[1], [2, 2], [3, 3, 3]]

    def test_nested_inner_var(self):
        assert ev("[i <- [1..3]: [j <- [1..i]: j]]") == [[1], [1, 2], [1, 2, 3]]

    def test_empty_domain(self):
        assert ev("[i <- []: i + 1]") == []

    def test_shadowing(self):
        assert ev("[i <- [1..2]: [i <- [5..6]: i]]") == [[5, 6], [5, 6]]

    def test_iterator_with_conditional_body(self):
        assert ev("[i <- [1..5]: if odd(i) then i else 0]") == [1, 0, 3, 0, 5]


class TestCompound:
    def test_let(self):
        assert ev("let x = 3 in x * x") == 9

    def test_let_shadowing(self):
        assert ev("let x = 1 in let x = 2 in x") == 2

    def test_if(self):
        assert ev("if 1 < 2 then 10 else 20") == 10

    def test_if_lazy_branches(self):
        # the untaken branch must not be evaluated
        assert ev("if true then 1 else [9][2]") == 1

    def test_tuples(self):
        assert ev("(1, true).2") is True
        assert ev("(1, (2, 3)).2.1") == 2

    def test_lambda_application(self):
        assert ev("(fn(x) => x + 1)(41)") == 42

    def test_higher_order_builtin(self):
        assert ev("reduce(add, [1,2,3,4,5])") == 15

    def test_higher_order_lambda(self):
        assert ev("reduce(fn(a, b) => a * b, [1,2,3,4])") == 24


class TestUserPrograms:
    def test_paper_sqs(self):
        prog = "fun sqs(n) = [i <- [1..n]: i*i]"
        assert run(prog, "sqs", [5]) == [1, 4, 9, 16, 25]

    def test_paper_oddsq(self):
        prog = """
            fun sqs(n) = [i <- [1..n]: i*i]
            fun oddsq(n) = [i <- [1..n] | odd(i): sqs(i)]
        """
        assert run(prog, "oddsq", [4]) == [[1], [1, 4, 9]]

    def test_paper_concat(self):
        assert run("", "concat_p", [[1, 2], [3]]) == [1, 2, 3]

    def test_paper_flatten(self):
        assert run("", "flatten_p", [[[1, 2], [3], [4, 5]]]) == [1, 2, 3, 4, 5]

    def test_flatten_p_empty(self):
        assert run("", "flatten_p", [[]]) == []

    def test_factorial_recursion(self):
        prog = "fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)"
        assert run(prog, "fact", [10]) == 3628800

    def test_nested_parallel_sort_style(self):
        prog = """
            fun mins(v) = [i <- [1..#v]: minval(take(v, i))]
        """
        assert run(prog, "mins", [[3, 1, 4, 1, 5]]) == [3, 1, 1, 1, 1]

    def test_prelude_reverse(self):
        assert run("", "reverse", [[1, 2, 3]]) == [3, 2, 1]

    def test_prelude_zip2(self):
        assert run("", "zip2", [[1, 2], [True, False]]) == [(1, True), (2, False)]

    def test_prelude_take_drop(self):
        assert run("", "take", [[1, 2, 3, 4], 2]) == [1, 2]
        assert run("", "drop", [[1, 2, 3, 4], 1]) == [2, 3, 4]

    def test_prelude_count(self):
        assert run("", "count", [[True, False, True]]) == 2

    def test_function_as_argument(self):
        prog = """
            fun apply_each(f, v) = [x <- v: f(x)]
            fun double(x) = 2 * x
            fun main(v) = apply_each(double, v)
        """
        assert run(prog, "main", [[1, 2, 3]]) == [2, 4, 6]

    def test_unknown_function(self):
        with pytest.raises(EvalError):
            run("", "nosuch", [1])

    def test_wrong_arity(self):
        with pytest.raises(EvalError):
            run("fun f(x) = x", "f", [1, 2])


class TestPrimCoverage:
    def test_every_surface_builtin_has_impl(self):
        from repro.lang.builtins import SURFACE_BUILTINS
        missing = SURFACE_BUILTINS - set(PRIM_IMPLS)
        assert not missing, f"builtins without interpreter impls: {missing}"
