"""Every combination of the four ``TransformOptions`` switches is
supported: the flag-derived pipeline has the documented shape (the
option-interaction table in docs/PASSES.md), and each combination runs
the examples to the same results as the reference interpreter."""

import itertools

import pytest

from repro import TransformOptions, compile_program

FLAGS = ("shared_seq_index", "reduce_to_native", "simplify", "fuse")
COMBOS = list(itertools.product([False, True], repeat=len(FLAGS)))


def combo_opts(combo):
    return TransformOptions(**dict(zip(FLAGS, combo)))


def combo_id(combo):
    on = [f for f, v in zip(FLAGS, combo) if v]
    return "+".join(on) or "none"


@pytest.mark.parametrize("combo", COMBOS, ids=map(combo_id, COMBOS))
def test_pipeline_shape(combo):
    """The documented compile-down rules: canonical/eliminate/optimize
    always; simplify when flagged; fuse appended last when flagged.  The
    §4.5 flags gate patterns *inside* optimize, never the pipeline."""
    opts = combo_opts(combo)
    names = ["canonical", "eliminate", "optimize"]
    if opts.simplify:
        names.append("simplify")
    if opts.fuse:
        names.append("fuse")
    assert opts.pipeline() == tuple(names)
    if opts.fuse:
        assert opts.pipeline()[-1] == "fuse"  # fusion sees cleaned IR


SOURCE = """
fun sqs(n) = [j <- [1..n]: j * j]
fun dotp(xs, ys) = sum([i <- [1..#xs]: xs[i] * ys[i]])
fun main(k) = dotp(flatten([i <- [1..k]: sqs(i)]),
                   flatten([i <- [1..k]: sqs(i)]))
"""


@pytest.mark.parametrize("combo", COMBOS, ids=map(combo_id, COMBOS))
def test_combination_runs_correctly(combo):
    """Each combination produces the interpreter's answer on a program
    exercising nesting, reduction (native-reducible) and shared
    indexing — the behaviours the flags actually gate."""
    opts = combo_opts(combo)
    prog = compile_program(SOURCE, options=opts)
    assert prog.run("main", [4]) == prog.run("main", [4], backend="interp")


def test_fuse_and_native_reduce_compose():
    """reduce_to_native + fuse: reductions rewrite to native segmented
    ops AND fusion still finds elementwise regions around them (the
    documented interaction — neither disables the other)."""
    from repro.lang import ast as A
    src = "fun main(v) = sum([x <- v: x * x + x])"
    opts = TransformOptions(fuse=True, reduce_to_native=True)
    prog = compile_program(src, options=opts)
    arg = [[1, 2, 3, 4]]
    mono, tp = prog.prepare("main", prog.entry_types("main", arg))
    assert tp.fusion is not None and tp.fusion.trees  # fusion ran, found ops
    natives = [e for d in tp.defs.values() for e in A.walk(d.body)
               if isinstance(e, A.ExtCall)
               and e.fn in ("sum", "maxval", "minval")]
    assert natives  # native reductions survived fusion
    assert tp.verified_phases  # postconditions ran for every defs pass
    assert prog.run("main", arg) == prog.run("main", arg, backend="interp")
