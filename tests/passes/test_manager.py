"""Pass-manager contract tests: the declared ``requires``/``produces``
invariants fully determine which pipelines are legal, and every illegal
ordering is rejected *statically* (at :class:`PassManager` construction,
before any pass runs)."""

from itertools import permutations

import pytest

from repro import TransformOptions, compile_program
from repro.errors import TransformError
from repro.passes import invariants as INV
from repro.passes.base import Pass
from repro.passes.manager import PassManager, manager_for
from repro.passes.registry import (get_pass, parse_pass_list,
                                   registered_passes)

ALL = ("canonical", "eliminate", "optimize", "simplify", "fuse")


def reference_legal(names) -> bool:
    """Independent re-derivation of pipeline legality from the declared
    contracts alone (what the manager *should* accept)."""
    passes = [get_pass(n) for n in names]
    if len({p.name for p in passes}) != len(passes):
        return False
    defs_started = False
    established = set(INV.ENTRY)
    for p in passes:
        if p.stage == "defs":
            defs_started = True
        elif defs_started:
            return False
        if p.requires - established:
            return False
        established |= p.produces
    return True


def manager_accepts(names, **opt_kw) -> bool:
    try:
        PassManager(names, TransformOptions(**opt_kw))
    except TransformError:
        return False
    return True


def test_all_permutations_match_declared_invariants():
    """Property: over every permutation of the five built-in passes, the
    manager accepts exactly the orders the declared invariants allow."""
    accepted = [p for p in permutations(ALL) if manager_accepts(p)]
    expected = [p for p in permutations(ALL) if reference_legal(p)]
    assert accepted == expected
    # and concretely: canonical then eliminate are forced, the three
    # iterator-free passes may follow in any order
    assert len(accepted) == 6
    assert all(p[:2] == ("canonical", "eliminate") for p in accepted)


@pytest.mark.parametrize("names", [
    ("eliminate",),                            # R2 without R1's canonical form
    ("canonical", "optimize"),                 # §4.5 before iterator freedom
    ("canonical", "simplify", "eliminate"),    # cleanup before R2
    ("optimize", "eliminate"),                 # the docs' example
    ("canonical", "eliminate", "fuse", "canonical"),  # duplicate + inversion
])
def test_illegal_orders_rejected(names):
    with pytest.raises(TransformError):
        PassManager(names, TransformOptions())


@pytest.mark.parametrize("names", [
    ("canonical",),
    ("canonical", "eliminate"),
    ("canonical", "eliminate", "fuse"),
    ("canonical", "eliminate", "simplify", "optimize", "fuse"),
])
def test_legal_subsets_accepted(names):
    assert manager_accepts(names)


def test_duplicate_pass_rejected():
    with pytest.raises(TransformError, match="listed twice"):
        PassManager(("canonical", "eliminate", "eliminate"),
                    TransformOptions())


def test_source_after_defs_rejected():
    class NoOpDefs(Pass):
        name = "noop-defs-test"

        def run(self, ctx):
            pass

        def postcondition(self, ctx):
            return None

    with pytest.raises(TransformError, match="source-stage"):
        PassManager([NoOpDefs(), get_pass("canonical")], TransformOptions())


def test_unknown_pass_names_known_set():
    with pytest.raises(TransformError, match="unknown pass 'frobnicate'"):
        PassManager(("frobnicate",), TransformOptions())
    with pytest.raises(TransformError, match="eliminate"):
        get_pass("nope")  # error text lists the registered spellings


def test_error_names_missing_invariant():
    with pytest.raises(TransformError,
                       match=r"'optimize' requires \['iterator-free'\]"):
        PassManager(("canonical", "optimize"), TransformOptions())


def test_validation_happens_at_compile_time():
    """An illegal ``TransformOptions(passes=...)`` fails in
    ``compile_program`` — before type inference, monomorphization, or any
    pass body runs."""
    with pytest.raises(TransformError, match="illegal pass order"):
        compile_program("fun id(x) = x",
                        options=TransformOptions(
                            passes=("optimize", "eliminate")))


def test_registry_covers_default_pipeline():
    reg = registered_passes()
    for name in TransformOptions(fuse=True).pipeline():
        assert name in reg
    for name, cls in reg.items():
        p = cls()
        assert p.name == name
        assert p.stage in ("source", "defs")
        assert p.description


def test_invariant_names_documented():
    for p in (cls() for cls in registered_passes().values()):
        for inv in p.requires | p.produces:
            assert inv in INV.DESCRIPTIONS, inv


def test_parse_pass_list():
    assert parse_pass_list("canonical, eliminate ,simplify") == (
        "canonical", "eliminate", "simplify")
    assert parse_pass_list(["canonical", "fuse"]) == ("canonical", "fuse")
    with pytest.raises(TransformError, match="empty pass list"):
        parse_pass_list(" , ")


def test_manager_for_uses_options_pipeline():
    pm = manager_for(TransformOptions(fuse=True, simplify=False))
    assert [p.name for p in pm.passes] == [
        "canonical", "eliminate", "optimize", "fuse"]
    assert [p.name for p in pm.source_passes()] == ["canonical"]
    assert [p.name for p in pm.defs_passes()] == [
        "eliminate", "optimize", "fuse"]


def test_span_names_preserved():
    """The obs span and verifier stage names the pre-refactor pipeline
    used are pinned (dashboards and the analysis layer key on them)."""
    canonical = get_pass("canonical")
    assert canonical.span == "canonicalize"
    assert canonical.verify_span == "verify:canonicalize"
    for name in ("eliminate", "optimize", "simplify", "fuse"):
        p = get_pass(name)
        assert p.span == name
        assert p.verify_span == f"verify:{name}"
