"""Golden-file tests for ``--print-ir-after-all``.

The dumps embed generated names (``t%N`` etc.) whose numbering comes from
a process-global counter, so each case runs the CLI in a *fresh
subprocess* — that makes the output deterministic and also exercises the
real user surface (``repro run ... --print-ir-after-all`` writing labeled
dumps to stderr while the result goes to stdout).

Regenerate after an intentional pipeline change with::

    REGEN_IR_GOLDENS=1 PYTHONPATH=src python -m pytest tests/passes/test_ir_dumps.py
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.passes.manager import dump_header
from repro.transform.pipeline import DEFAULT_PASSES

HERE = Path(__file__).resolve().parent
REPO = HERE.parents[1]

CASES = [
    # (golden stem, cli args, expected stdout)
    ("sqs", ["run", str(HERE / "data" / "sqs.p"), "-e", "main", "-a", "3"],
     "[[1], [1, 4], [1, 4, 9]]"),
    ("dotp", ["run", str(HERE / "data" / "dotp.p"), "-e", "dotp",
              "-a", "[1,2,3]", "-a", "[4,5,6]"],
     "32"),
]


def run_cli(args):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.run(
        [sys.executable, "-m", "repro", *args, "--print-ir-after-all"],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)


@pytest.mark.parametrize("stem,args,expect_out",
                         [c for c in CASES], ids=[c[0] for c in CASES])
def test_ir_dump_golden(stem, args, expect_out):
    proc = run_cli(args)
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip() == expect_out
    golden = HERE / "golden" / f"{stem}.ir-dumps.txt"
    if os.environ.get("REGEN_IR_GOLDENS"):
        golden.write_text(proc.stderr)
    assert golden.exists(), f"missing golden {golden}; regenerate with " \
                            "REGEN_IR_GOLDENS=1"
    assert proc.stderr == golden.read_text()


def test_one_dump_per_registered_pass():
    """--print-ir-after-all emits exactly one labeled dump per pass of
    the pipeline, in pipeline order (the acceptance criterion)."""
    proc = run_cli(CASES[0][1])
    headers = [ln for ln in proc.stderr.splitlines()
               if ln.startswith("// -----//")]
    assert headers == [dump_header(name) for name in DEFAULT_PASSES]


def test_print_ir_after_single_pass():
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *CASES[0][1],
         "--print-ir-after", "simplify"],
        capture_output=True, text=True, env=env, cwd=REPO, timeout=120)
    assert proc.returncode == 0, proc.stderr
    headers = [ln for ln in proc.stderr.splitlines()
               if ln.startswith("// -----//")]
    assert headers == [dump_header("simplify")]
