"""Pipeline-equivalence battery: the pass-manager pipeline must produce
*identical* transformed IR — and identical run results — to the
pre-refactor hand-wired pipeline, on the 9 examples and 200 fuzzed
programs.

``legacy_transform`` below is a verbatim replica of the hand-wired
driver `transform_program` replaced (eliminate worklist, then the gated
§4.5 rewrites, then simplify, then fuse — each phase a direct function
call).  Equality is on the pretty-printed definitions, which pin name
choices, let structure, depths, and argument order.
"""

import ast as pyast
from pathlib import Path

import pytest

from repro import TransformOptions, compile_program
from repro.lang import ast as A
from repro.lang.pretty import pretty_def
from repro.lang.types import parse_type
from repro.passes.builtin import _Worklist
from repro.transform import optimize as OPT
from repro.transform.fuse import FusionRegistry, fuse_expr
from repro.transform.simplify import simplify_def
from repro.transform.trace import NullTrace

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def legacy_transform(typed, entries, opts, ext_entries=()):
    """The pre-pass-manager pipeline, phase calls hand-wired in the
    original order; returns (defs, fusion)."""
    wl = _Worklist(typed, NullTrace())
    for name in entries:
        wl.request_def(name)
    for name in ext_entries:
        wl.request_ext1(name)
    wl.drain()
    defs = wl.out_defs
    if opts.reduce_to_native:
        for d in defs.values():
            d.body = OPT.rewrite_native_reduce(d.body)
    if opts.shared_seq_index:
        for d in defs.values():
            d.body = OPT.rewrite_shared_index(d.body)
            d.body = OPT.rewrite_segshared_index(d.body)
    if opts.simplify:
        for d in defs.values():
            simplify_def(d)
    fusion = None
    if opts.fuse:
        # mirrors FusePass: iteration shortcut, fuse, dead-binding sweep
        from repro.passes.pattern import greedy_rewrite
        from repro.transform import simplify as S
        from repro.transform.fuse import shortcut_iteration
        fusion = FusionRegistry()
        patterns = [S.AliasInlinePattern(), S.DeadBindingPattern()]
        for d in defs.values():
            body = shortcut_iteration(d.body)
            body = fuse_expr(body, fusion)
            d.body = greedy_rewrite(body, patterns)
    return defs, fusion


def render(defs) -> str:
    return "\n\n".join(pretty_def(d) for d in defs.values())


def assert_pipelines_agree(source: str, entry: str, arg_types,
                           opts: TransformOptions, label: str):
    """Transform one entry through both pipelines and require printed-IR
    equality.  Generated names embed a process-global counter, so each
    pipeline gets its own compile off a reset counter — the two runs then
    see bit-identical counter states."""
    A.reset_fresh_names()
    prog = compile_program(source, options=opts)
    new_tp = prog.prepare(entry, tuple(arg_types))[1]
    A.reset_fresh_names()
    prog2 = compile_program(source, options=opts)
    mono = prog2.typed.instance(entry, tuple(arg_types))
    legacy_defs, legacy_fusion = legacy_transform(prog2.typed, [mono], opts)
    assert render(new_tp.defs) == render(legacy_defs), label
    assert list(new_tp.defs) == list(legacy_defs), label
    if opts.fuse:
        assert (new_tp.fusion.trees.keys()
                == legacy_fusion.trees.keys()), label


def _example_spec(path: Path) -> dict:
    spec = {}
    for node in pyast.parse(path.read_text()).body:
        if (isinstance(node, pyast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], pyast.Name)
                and node.targets[0].id in ("SOURCE", "PROFILE_ENTRY",
                                           "PROFILE_ARGS")):
            spec[node.targets[0].id] = pyast.literal_eval(node.value)
    return spec


EXAMPLE_FILES = sorted(p for p in EXAMPLES.glob("*.py")
                       if "SOURCE" in _example_spec(p)
                       and "PROFILE_ENTRY" in _example_spec(p))


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[p.stem for p in EXAMPLE_FILES])
@pytest.mark.parametrize("opts", [
    TransformOptions(),
    TransformOptions(fuse=True, reduce_to_native=True),
], ids=["default", "fuse+native"])
def test_examples_identical_ir(path, opts):
    spec = _example_spec(path)
    prog = compile_program(spec["SOURCE"], options=opts)
    entry, args = spec["PROFILE_ENTRY"], list(spec["PROFILE_ARGS"])
    at = prog.entry_types(entry, args)
    assert_pipelines_agree(spec["SOURCE"], entry, at, opts, path.name)


@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[p.stem for p in EXAMPLE_FILES])
def test_examples_identical_run_results(path):
    """Results through the pass-manager pipeline equal the reference
    interpreter's (the interpreter never ran the refactored phases, so
    this pins end-to-end behaviour, not just printed IR)."""
    spec = _example_spec(path)
    prog = compile_program(spec["SOURCE"])
    entry, args = spec["PROFILE_ENTRY"], list(spec["PROFILE_ARGS"])
    assert (prog.run(entry, args)
            == prog.run(entry, args, backend="interp")), path.name


@pytest.mark.parametrize("chunk", range(4))
def test_fuzzed_programs_identical_ir(chunk):
    """200 seeded fuzzer programs: new pipeline IR == legacy pipeline IR
    (chunked so failures name a 50-seed window)."""
    from repro.fuzz.gen import gen_case
    opts = TransformOptions()
    for seed in range(chunk * 50, (chunk + 1) * 50):
        case = gen_case(seed)
        types = tuple(parse_type(t) for t in case.types)
        assert_pipelines_agree(case.source, case.entry, types, opts,
                               f"seed {seed}")
