"""Unit tests for the rewrite-pattern API: one-sweep vs fixpoint driver
semantics, first-match-wins ordering, and metadata preservation."""

import pytest

from repro.lang import ast as A
from repro.passes.pattern import (RewritePattern, apply_patterns,
                                  greedy_rewrite)


def add(a, b):
    return A.Call(A.Var("add"), [a, b])


class AddZero(RewritePattern):
    """x + 0 -> x (and 0 + x -> x)."""

    def match_and_rewrite(self, e):
        if (isinstance(e, A.Call) and isinstance(e.fn, A.Var)
                and e.fn.name == "add" and len(e.args) == 2):
            a, b = e.args
            if isinstance(b, A.IntLit) and b.value == 0:
                return self.copy_meta(a, e)
            if isinstance(a, A.IntLit) and a.value == 0:
                return self.copy_meta(b, e)
        return None


class Decrement(RewritePattern):
    """n -> n-1 while n > 0; fires at most once per node per sweep."""

    def match_and_rewrite(self, e):
        if isinstance(e, A.IntLit) and e.value > 0:
            return A.IntLit(e.value - 1)
        return None


class Diverge(RewritePattern):
    def match_and_rewrite(self, e):
        if isinstance(e, A.IntLit):
            return A.IntLit(e.value + 1)
        return None


def test_name_defaults_to_class_name():
    assert AddZero().name == "AddZero"
    assert RewritePattern.match_and_rewrite.__doc__  # contract documented
    with pytest.raises(NotImplementedError):
        RewritePattern().match_and_rewrite(A.IntLit(1))


def test_single_sweep_rewrites_children_first():
    # add(add(x, 0), 0): the inner redex simplifies first, exposing the
    # outer one within the SAME sweep (post-order).
    e = add(add(A.Var("x"), A.IntLit(0)), A.IntLit(0))
    out = apply_patterns(e, [AddZero()])
    assert isinstance(out, A.Var) and out.name == "x"


def test_single_sweep_does_not_reexamine_results():
    # One sweep decrements each literal exactly once; the replacement is
    # final for the sweep (the §4.5 single-application discipline).
    out = apply_patterns(A.IntLit(3), [Decrement()])
    assert isinstance(out, A.IntLit) and out.value == 2


def test_greedy_rewrite_reaches_fixpoint():
    out = greedy_rewrite(A.IntLit(3), [Decrement()])
    assert isinstance(out, A.IntLit) and out.value == 0


def test_greedy_rewrite_backstop():
    with pytest.raises(RuntimeError, match="Diverge"):
        greedy_rewrite(A.IntLit(0), [Diverge()], max_sweeps=7)


def test_first_matching_pattern_wins():
    class ToA(RewritePattern):
        def match_and_rewrite(self, e):
            return A.Var("a") if isinstance(e, A.IntLit) else None

    class ToB(RewritePattern):
        def match_and_rewrite(self, e):
            return A.Var("b") if isinstance(e, A.IntLit) else None

    assert apply_patterns(A.IntLit(1), [ToA(), ToB()]).name == "a"
    assert apply_patterns(A.IntLit(1), [ToB(), ToA()]).name == "b"


def test_no_match_returns_tree_unchanged():
    e = add(A.Var("x"), A.IntLit(1))
    out = apply_patterns(e, [AddZero()])
    assert isinstance(out, A.Call)
    assert isinstance(out.args[1], A.IntLit) and out.args[1].value == 1


def test_copy_meta_preserves_type_and_position():
    e = add(A.Var("x"), A.IntLit(0))
    e.type = "T-marker"
    e.line, e.col = 7, 3
    out = apply_patterns(e, [AddZero()])
    assert out.type == "T-marker"
    assert (out.line, out.col) == (7, 3)
