-- the paper's running example (section 5), two nesting levels
fun sqs(n) = [j <- [1..n]: j * j]

fun main(k) = [i <- [1..k]: sqs(i)]
