-- flat dot product: one iterator, a reduction (native-reducible)
fun dotp(xs, ys) = sum([i <- [1..#xs]: xs[i] * ys[i]])
