"""Tests for the Figure-1 display renderer."""

from repro.lang.types import BOOL, FLOAT, INT, TSeq, TTuple, seq_of
from repro.vector.convert import from_python
from repro.vector.display import nesting_tree, representation_table, show

PAPER = [[[2, 7], [3, 9, 8]], [[3], [4, 3, 2]]]


class TestRepresentationTable:
    def test_paper_example(self):
        nv = from_python(PAPER, seq_of(INT, 3))
        t = representation_table(nv)
        assert "descriptor V1 : [2]" in t
        assert "descriptor V2 : [2, 2]" in t
        assert "descriptor V3 : [2, 3, 1, 3]" in t
        assert "[2, 7, 3, 9, 8, 3, 4, 3, 2]" in t

    def test_bool_values(self):
        nv = from_python([True, False], TSeq(BOOL))
        assert "True" in representation_table(nv)

    def test_float_values(self):
        nv = from_python([1.5], TSeq(FLOAT))
        assert "1.5" in representation_table(nv)


class TestNestingTree:
    def test_paper_example_structure(self):
        nv = from_python(PAPER, seq_of(INT, 3))
        tree = nesting_tree(nv)
        assert tree.startswith("root(2)")
        assert tree.count("*(2)") == 3   # two level-1 nodes + one leaf group
        assert "[3 9 8]" in tree and "[4 3 2]" in tree

    def test_empty_subsequences(self):
        nv = from_python([[1], []], seq_of(INT, 2))
        tree = nesting_tree(nv)
        assert "*(0)" in tree and "[]" in tree

    def test_flat_sequence(self):
        nv = from_python([1, 2, 3], TSeq(INT))
        tree = nesting_tree(nv)
        assert "root(3)" in tree and "[1 2 3]" in tree


class TestShow:
    def test_combines_views(self):
        nv = from_python(PAPER, seq_of(INT, 3))
        s = show(nv, "demo")
        assert "nesting tree" in s and "vector representation" in s
        assert "== demo ==" in s

    def test_tuple_components(self):
        v = from_python([(1, True)], TSeq(TTuple((INT, BOOL))))
        s = show(v)
        assert s.count("nesting tree") == 2

    def test_scalar_passthrough(self):
        assert "5" in show(5, "x")
