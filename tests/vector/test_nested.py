"""Tests for the vector representation — including the exact Figure 1
example from the paper."""

import numpy as np
import pytest

from repro.errors import VectorError
from repro.lang.types import BOOL, INT, TFun, TSeq, TTuple, seq_of
from repro.vector.convert import from_python, to_python
from repro.vector.nested import (
    FUNTABLE, NestedVector, VFun, VTuple, first_leaf, leaves_of, map_leaves,
)


class TestFigure1:
    """Paper Figure 1: representation of [[[2,7],[3,9,8]],[[3],[4,3,2]]]."""

    VALUE = [[[2, 7], [3, 9, 8]], [[3], [4, 3, 2]]]

    def test_descriptor_vectors(self):
        nv = from_python(self.VALUE, seq_of(INT, 3))
        assert [d.tolist() for d in nv.descs] == [[2], [2, 2], [2, 3, 1, 3]]
        assert nv.values.tolist() == [2, 7, 3, 9, 8, 3, 4, 3, 2]

    def test_invariant_holds(self):
        nv = from_python(self.VALUE, seq_of(INT, 3))
        # paper: for all i, #V_{i+1} = sum(V_i)
        levels = [*nv.descs, nv.values]
        for i in range(len(levels) - 1):
            assert len(levels[i + 1]) == int(levels[i].sum())

    def test_roundtrip(self):
        nv = from_python(self.VALUE, seq_of(INT, 3))
        assert to_python(nv, seq_of(INT, 3)) == self.VALUE

    def test_empty_leaf_is_zero_in_descriptor(self):
        # "empty sequences at the leaves ... represented by a zero index in
        # the lowest-level descriptor vector"
        nv = from_python([[1], []], seq_of(INT, 2))
        assert nv.descs[1].tolist() == [1, 0]


class TestConstruction:
    def test_flat(self):
        nv = NestedVector([[3]], np.array([1, 2, 3]), "int")
        assert nv.depth == 1 and nv.top_length == 3

    def test_invariant_checked(self):
        with pytest.raises(VectorError):
            NestedVector([[2]], np.array([1, 2, 3]), "int")

    def test_top_descriptor_must_be_singleton(self):
        with pytest.raises(VectorError):
            NestedVector([[1, 1]], np.array([1, 2]), "int")

    def test_negative_count_rejected(self):
        with pytest.raises(VectorError):
            NestedVector([[1], [-1]], np.array([]), "int")

    def test_bad_kind(self):
        with pytest.raises(VectorError):
            NestedVector([[0]], np.array([]), "complex")

    def test_equality(self):
        a = NestedVector([[2]], np.array([1, 2]), "int")
        b = NestedVector([[2]], np.array([1, 2]), "int")
        c = NestedVector([[2]], np.array([1, 3]), "int")
        assert a == b and a != c

    def test_levels_roundtrip(self):
        nv = from_python([[1, 2], [3]], seq_of(INT, 2))
        nv2 = NestedVector.from_levels(nv.top_length, nv.levels(), nv.kind)
        assert nv2 == nv

    def test_prepend_drop_unit(self):
        nv = from_python([1, 2, 3], TSeq(INT))
        up = nv.prepend_unit()
        assert up.depth == 2 and up.top_length == 1
        assert up.drop_unit() == nv

    def test_drop_unit_rejects_nonunit(self):
        nv = from_python([[1], [2]], seq_of(INT, 2))
        with pytest.raises(VectorError):
            nv.drop_unit()


class TestConvert:
    def test_scalars(self):
        assert from_python(5, INT) == 5
        assert from_python(True, BOOL) is True
        assert to_python(5, INT) == 5

    def test_bool_not_int(self):
        with pytest.raises(VectorError):
            from_python(True, INT)
        with pytest.raises(VectorError):
            from_python(1, BOOL)

    def test_flat_bool_seq(self):
        nv = from_python([True, False], TSeq(BOOL))
        assert nv.kind == "bool"
        assert to_python(nv, TSeq(BOOL)) == [True, False]

    def test_empty(self):
        nv = from_python([], TSeq(INT))
        assert nv.top_length == 0
        assert to_python(nv, TSeq(INT)) == []

    def test_deep_empty(self):
        v = [[], [[]]]
        nv = from_python(v, seq_of(INT, 3))
        assert to_python(nv, seq_of(INT, 3)) == v

    def test_tuple_value(self):
        t = TTuple((INT, BOOL))
        v = from_python((1, True), t)
        assert isinstance(v, VTuple)
        assert to_python(v, t) == (1, True)

    def test_seq_of_tuples_pushes_outward(self):
        t = TSeq(TTuple((INT, BOOL)))
        v = from_python([(1, True), (2, False)], t)
        assert isinstance(v, VTuple)
        a, b = v.items
        assert a.values.tolist() == [1, 2]
        assert b.values.tolist() == [True, False]
        assert to_python(v, t) == [(1, True), (2, False)]

    def test_seq_of_tuples_shares_descriptors(self):
        t = seq_of(TTuple((INT, INT)), 2)
        v = from_python([[(1, 2)], [(3, 4), (5, 6)]], t)
        a, b = v.items
        assert [d.tolist() for d in a.descs] == [d.tolist() for d in b.descs]

    def test_tuple_containing_seq(self):
        t = TTuple((INT, TSeq(INT)))
        v = from_python((7, [1, 2]), t)
        assert to_python(v, t) == (7, [1, 2])

    def test_seq_of_tuple_of_seq(self):
        t = TSeq(TTuple((INT, TSeq(INT))))
        val = [(1, [10]), (2, [20, 30])]
        v = from_python(val, t)
        assert to_python(v, t) == val

    def test_function_values(self):
        v = from_python(VFun("add"), TFun((INT, INT), INT))
        assert isinstance(v, VFun) and v.name == "add"

    def test_seq_of_functions(self):
        t = TSeq(TFun((INT, INT), INT))
        nv = from_python([VFun("add"), VFun("mul")], t)
        assert nv.kind == "fun"
        back = to_python(nv, t)
        assert [f.name for f in back] == ["add", "mul"]

    def test_funtable_interning(self):
        a = FUNTABLE.intern("some_fn")
        b = FUNTABLE.intern("some_fn")
        assert a == b
        assert FUNTABLE.name_of(a) == "some_fn"

    def test_type_mismatch_errors(self):
        with pytest.raises(VectorError):
            from_python([1, 2], seq_of(INT, 2))
        with pytest.raises(VectorError):
            from_python(5, TSeq(INT))
        with pytest.raises(VectorError):
            from_python([(1,)], TSeq(TTuple((INT, INT))))


class TestLeafHelpers:
    def test_first_leaf(self):
        t = TSeq(TTuple((INT, BOOL)))
        v = from_python([(1, True)], t)
        leaf = first_leaf(v)
        assert isinstance(leaf, NestedVector) and leaf.kind == "int"

    def test_leaves_of(self):
        t = TSeq(TTuple((INT, TTuple((BOOL, INT)))))
        v = from_python([(1, (True, 2))], t)
        assert len(leaves_of(v)) == 3

    def test_map_leaves(self):
        t = TSeq(TTuple((INT, INT)))
        v = from_python([(1, 2)], t)
        doubled = map_leaves(
            lambda nv: NestedVector(nv.descs, nv.values * 2, nv.kind), v)
        assert doubled.items[0].values.tolist() == [2]
        assert doubled.items[1].values.tolist() == [4]
