"""Tests for vector value persistence (.npz round trips)."""

import pytest

from repro.errors import VectorError
from repro.lang.types import BOOL, FLOAT, INT, TFun, TSeq, TTuple, parse_type, seq_of
from repro.vector.convert import from_python, to_python
from repro.vector.io import load_value, save_value
from repro.vector.nested import VFun


def roundtrip(tmp_path, pyval, typ):
    v = from_python(pyval, typ)
    f = str(tmp_path / "v.npz")
    save_value(f, v, typ)
    back, t2 = load_value(f)
    assert t2 == typ
    return to_python(back, typ)


class TestRoundTrips:
    def test_flat_ints(self, tmp_path):
        assert roundtrip(tmp_path, [1, 2, 3], TSeq(INT)) == [1, 2, 3]

    def test_deep_ragged(self, tmp_path):
        v = [[[2, 7], [3, 9, 8]], [[3], [4, 3, 2]], []]
        assert roundtrip(tmp_path, v, seq_of(INT, 3)) == v

    def test_bools(self, tmp_path):
        assert roundtrip(tmp_path, [True, False], TSeq(BOOL)) == [True, False]

    def test_floats(self, tmp_path):
        assert roundtrip(tmp_path, [1.5, -0.25], TSeq(FLOAT)) == [1.5, -0.25]

    def test_tuples(self, tmp_path):
        t = TSeq(TTuple((INT, TSeq(BOOL))))
        v = [(1, [True]), (2, [])]
        assert roundtrip(tmp_path, v, t) == v

    def test_scalar(self, tmp_path):
        f = str(tmp_path / "s.npz")
        save_value(f, 42, INT)
        v, t = load_value(f)
        assert v == 42 and t == INT

    def test_function_values(self, tmp_path):
        t = TSeq(TFun((INT,), INT))
        nv = from_python([VFun("neg"), VFun("abs_")], t)
        f = str(tmp_path / "f.npz")
        save_value(f, nv, t)
        back, t2 = load_value(f)
        assert [x.name for x in to_python(back, t)] == ["neg", "abs_"]

    def test_empty(self, tmp_path):
        assert roundtrip(tmp_path, [], TSeq(INT)) == []


class TestErrors:
    def test_not_a_vector_file(self, tmp_path):
        import numpy as np
        f = str(tmp_path / "x.npz")
        np.savez(f, a=np.zeros(3))
        with pytest.raises(VectorError):
            load_value(f)

    def test_unserializable(self, tmp_path):
        with pytest.raises(VectorError):
            save_value(str(tmp_path / "y.npz"), object(), INT)


class TestInterop:
    def test_computation_on_loaded_value(self, tmp_path):
        # save a value, load it, feed it back through a program
        from repro import compile_program
        t = seq_of(INT, 2)
        v = from_python([[3, 1], [2]], t)
        f = str(tmp_path / "z.npz")
        save_value(f, v, t)
        back, _ = load_value(f)
        prog = compile_program("fun f(vv) = [v <- vv: sort(v)]")
        assert prog.run("f", [to_python(back, t)]) == [[1, 3], [2]]
