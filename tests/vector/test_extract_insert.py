"""Tests for extract/insert (paper Figure 2) including the paper's law
V == insert(extract(V, d), V, d)."""

import numpy as np
import pytest

from repro.errors import VectorError
from repro.lang.types import INT, TTuple, seq_of
from repro.vector.convert import from_python, to_python
from repro.vector.extract_insert import extract, insert
from repro.vector.nested import VTuple

V3 = [[[2, 7], [3, 9, 8]], [[3], [4, 3, 2]]]


class TestExtract:
    def test_extract_1_is_identity(self):
        nv = from_python(V3, seq_of(INT, 3))
        assert extract(nv, 1) == nv

    def test_extract_2_flattens_top(self):
        nv = from_python(V3, seq_of(INT, 3))
        ex = extract(nv, 2)
        assert ex.depth == 2
        assert ex.descs[0].tolist() == [4]
        assert ex.descs[1].tolist() == [2, 3, 1, 3]
        assert to_python(ex, seq_of(INT, 2)) == [[2, 7], [3, 9, 8], [3], [4, 3, 2]]

    def test_extract_full_depth(self):
        nv = from_python(V3, seq_of(INT, 3))
        ex = extract(nv, 3)
        assert ex.depth == 1
        assert ex.descs[0].tolist() == [9]
        assert to_python(ex, seq_of(INT, 1)) == [2, 7, 3, 9, 8, 3, 4, 3, 2]

    def test_extract_no_data_movement(self):
        nv = from_python(V3, seq_of(INT, 3))
        ex = extract(nv, 2)
        assert ex.values is nv.values  # descriptor surgery only

    def test_extract_too_deep(self):
        nv = from_python([1, 2], seq_of(INT, 1))
        with pytest.raises(VectorError):
            extract(nv, 2)

    def test_extract_zero_invalid(self):
        nv = from_python([1], seq_of(INT, 1))
        with pytest.raises(VectorError):
            extract(nv, 0)

    def test_extract_tuple_componentwise(self):
        t = seq_of(TTuple((INT, INT)), 2)
        v = from_python([[(1, 2)], [(3, 4), (5, 6)]], t)
        ex = extract(v, 2)
        assert isinstance(ex, VTuple)
        assert ex.items[0].descs[0].tolist() == [3]


class TestInsert:
    def test_roundtrip_law(self):
        # paper: V = insert(extract(V,d), V, d) for any d <= depth of V
        nv = from_python(V3, seq_of(INT, 3))
        for d in (1, 2, 3):
            assert insert(extract(nv, d), nv, d) == nv

    def test_insert_different_r(self):
        # frame from V, data from an unrelated flat computation
        nv = from_python([[1, 2], [3]], seq_of(INT, 2))
        flat = from_python([10, 20, 30], seq_of(INT, 1))
        out = insert(flat, nv, 2)
        assert to_python(out, seq_of(INT, 2)) == [[10, 20], [30]]

    def test_insert_length_mismatch(self):
        nv = from_python([[1, 2], [3]], seq_of(INT, 2))
        flat = from_python([10, 20], seq_of(INT, 1))
        with pytest.raises(VectorError):
            insert(flat, nv, 2)

    def test_insert_deeper_result(self):
        # R itself nested: attach a depth-2 frame on top of depth-2 data
        frame = from_python([[1], [2, 3]], seq_of(INT, 2))
        r = from_python([[5], [], [6, 7]], seq_of(INT, 2))
        out = insert(r, frame, 2)
        assert out.depth == 3
        assert to_python(out, seq_of(INT, 3)) == [[[5]], [[], [6, 7]]]

    def test_insert_1_is_identity(self):
        r = from_python([1, 2], seq_of(INT, 1))
        assert insert(r, r, 1) == r

    def test_insert_shallow_frame_rejected(self):
        r = from_python([1], seq_of(INT, 1))
        frame = from_python([7], seq_of(INT, 1))
        with pytest.raises(VectorError):
            insert(r, frame, 2)
