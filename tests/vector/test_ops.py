"""Tests for the depth-1 kernels, oracle-checked against the per-element
interpreter primitives: f^1(args)[k] == f(args[k]) by definition of the
parallel extension."""

import numpy as np
import pytest

from repro.errors import EvalError, VectorError
from repro.interp.interpreter import PRIM_IMPLS
from repro.lang.types import BOOL, INT, TSeq, TTuple, seq_of
from repro.vector import ops as O
from repro.vector.convert import from_python, to_python
from repro.vector.nested import VFun, VTuple


def frame(pyval, elem_t):
    """Build a depth-1 frame (a Seq of elem_t) from a Python list."""
    return from_python(pyval, TSeq(elem_t))


def unframe(v, elem_t):
    return to_python(v, TSeq(elem_t))


def oracle(name, *columns):
    """Elementwise application of the interpreter primitive."""
    return [PRIM_IMPLS[name](*row) for row in zip(*columns)]


class TestElementwise:
    @pytest.mark.parametrize("name", ["add", "sub", "mul", "max2", "min2"])
    def test_binary_int(self, name):
        a, b = [3, -1, 7, 0], [2, 5, -7, 9]
        out = O.apply_kernel(name, [frame(a, INT), frame(b, INT)])
        assert unframe(out, INT) == oracle(name, a, b)

    @pytest.mark.parametrize("name", ["eq", "ne", "lt", "le", "gt", "ge"])
    def test_comparisons(self, name):
        a, b = [1, 2, 3], [3, 2, 1]
        out = O.apply_kernel(name, [frame(a, INT), frame(b, INT)])
        assert unframe(out, BOOL) == oracle(name, a, b)

    def test_div_mod_match_interpreter(self):
        a, b = [7, -7, 9], [2, 2, -4]
        for name in ("div", "mod"):
            out = O.apply_kernel(name, [frame(a, INT), frame(b, INT)])
            assert unframe(out, INT) == oracle(name, a, b)

    def test_div_by_zero(self):
        with pytest.raises(EvalError):
            O.apply_kernel("div", [frame([1], INT), frame([0], INT)])

    def test_bool_ops(self):
        a, b = [True, True, False], [True, False, False]
        for name in ("and_", "or_"):
            out = O.apply_kernel(name, [frame(a, BOOL), frame(b, BOOL)])
            assert unframe(out, BOOL) == oracle(name, a, b)
        out = O.apply_kernel("not_", [frame(a, BOOL)])
        assert unframe(out, BOOL) == oracle("not_", a)

    def test_unary_int(self):
        a = [3, -4, 0]
        assert unframe(O.apply_kernel("neg", [frame(a, INT)]), INT) == [-3, 4, 0]
        assert unframe(O.apply_kernel("abs_", [frame(a, INT)]), INT) == [3, 4, 0]

    def test_nonconformable_rejected(self):
        with pytest.raises(VectorError):
            O.apply_kernel("add", [frame([1], INT), frame([1, 2], INT)])


class TestSequenceKernels:
    def test_length(self):
        v = [[1, 2], [], [5, 6, 7]]
        out = O.apply_kernel("length", [frame(v, TSeq(INT))])
        assert unframe(out, INT) == [2, 0, 3]

    def test_length_of_nested(self):
        v = [[[1], [2, 3]], []]
        out = O.apply_kernel("length", [frame(v, seq_of(INT, 2))])
        assert unframe(out, INT) == [2, 0]

    def test_range1(self):
        n = [3, 0, 2]
        out = O.apply_kernel("range1", [frame(n, INT)])
        assert unframe(out, TSeq(INT)) == [[1, 2, 3], [], [1, 2]]

    def test_range1_negative_is_empty(self):
        out = O.apply_kernel("range1", [frame([-5], INT)])
        assert unframe(out, TSeq(INT)) == [[]]

    def test_range(self):
        a, b = [2, 5, 0], [4, 4, 0]
        out = O.apply_kernel("range", [frame(a, INT), frame(b, INT)])
        assert unframe(out, TSeq(INT)) == [[2, 3, 4], [], [0]]

    def test_seq_index(self):
        v = [[10, 20], [30], [40, 50, 60]]
        i = [2, 1, 3]
        out = O.apply_kernel("seq_index", [frame(v, TSeq(INT)), frame(i, INT)])
        assert unframe(out, INT) == oracle("seq_index", v, i)

    def test_seq_index_deep_elements(self):
        v = [[[1], [2, 3]], [[4, 5]]]
        i = [2, 1]
        out = O.apply_kernel("seq_index", [frame(v, seq_of(INT, 2)), frame(i, INT)])
        assert unframe(out, TSeq(INT)) == [[2, 3], [4, 5]]

    def test_seq_index_out_of_range(self):
        with pytest.raises(EvalError):
            O.apply_kernel("seq_index", [frame([[1]], TSeq(INT)), frame([2], INT)])

    def test_seq_index_shared(self):
        shared = from_python([10, 20, 30], TSeq(INT))
        i = [3, 1, 1, 2]
        out = O.k_seq_index_shared(shared, frame(i, INT))
        assert unframe(out, INT) == [30, 10, 10, 20]

    def test_seq_index_shared_bounds(self):
        shared = from_python([10], TSeq(INT))
        with pytest.raises(EvalError):
            O.k_seq_index_shared(shared, frame([2], INT))

    def test_seq_update_scalar_elems(self):
        v = [[1, 2], [3, 4, 5]]
        i = [1, 3]
        x = [9, 8]
        out = O.apply_kernel("seq_update",
                             [frame(v, TSeq(INT)), frame(i, INT), frame(x, INT)])
        assert unframe(out, TSeq(INT)) == oracle("seq_update", v, i, x)

    def test_seq_update_deep_elems(self):
        v = [[[1], [2, 2]], [[3]]]
        i = [2, 1]
        x = [[7, 7, 7], []]
        out = O.apply_kernel(
            "seq_update",
            [frame(v, seq_of(INT, 2)), frame(i, INT), frame(x, TSeq(INT))])
        assert unframe(out, seq_of(INT, 2)) == [[[1], [7, 7, 7]], [[]]]

    def test_restrict(self):
        v = [[1, 2, 3], [4, 5]]
        m = [[True, False, True], [False, False]]
        out = O.apply_kernel("restrict",
                             [frame(v, TSeq(INT)), frame(m, TSeq(BOOL))])
        assert unframe(out, TSeq(INT)) == oracle("restrict", v, m)

    def test_restrict_deep(self):
        v = [[[1], [2, 3]], [[4]]]
        m = [[False, True], [True]]
        out = O.apply_kernel("restrict",
                             [frame(v, seq_of(INT, 2)), frame(m, TSeq(BOOL))])
        assert unframe(out, seq_of(INT, 2)) == [[[2, 3]], [[4]]]

    def test_restrict_mismatch(self):
        with pytest.raises(EvalError):
            O.apply_kernel("restrict",
                           [frame([[1, 2]], TSeq(INT)), frame([[True]], TSeq(BOOL))])

    def test_combine(self):
        m = [[True, False, True], [False]]
        v = [[1, 2], []]
        u = [[9], [7]]
        out = O.apply_kernel("combine",
                             [frame(m, TSeq(BOOL)), frame(v, TSeq(INT)),
                              frame(u, TSeq(INT))])
        assert unframe(out, TSeq(INT)) == oracle("combine", m, v, u)

    def test_combine_restrict_law(self):
        # restrict(combine(M,V,U), M) == V  per frame element
        m = [[True, True, False], [False, True]]
        v = [[1, 2], [3]]
        u = [[9], [8]]
        c = O.apply_kernel("combine",
                           [frame(m, TSeq(BOOL)), frame(v, TSeq(INT)),
                            frame(u, TSeq(INT))])
        r = O.apply_kernel("restrict", [c, frame(m, TSeq(BOOL))])
        assert unframe(r, TSeq(INT)) == v

    def test_combine_mismatch(self):
        with pytest.raises(EvalError):
            O.apply_kernel("combine",
                           [frame([[True]], TSeq(BOOL)), frame([[1, 2]], TSeq(INT)),
                            frame([[]], TSeq(INT))])

    def test_dist(self):
        c = [5, 6]
        r = [3, 0]
        out = O.apply_kernel("dist", [frame(c, INT), frame(r, INT)])
        assert unframe(out, TSeq(INT)) == oracle("dist", c, r)

    def test_dist_deep(self):
        c = [[1, 2], [3]]
        r = [2, 3]
        out = O.apply_kernel("dist", [frame(c, TSeq(INT)), frame(r, INT)])
        assert unframe(out, seq_of(INT, 2)) == [[[1, 2], [1, 2]], [[3], [3], [3]]]

    def test_dist_negative(self):
        with pytest.raises(EvalError):
            O.apply_kernel("dist", [frame([1], INT), frame([-1], INT)])

    def test_seq_cons(self):
        a, b = [1, 2], [10, 20]
        out = O.apply_kernel("__seq_cons", [frame(a, INT), frame(b, INT)])
        assert unframe(out, TSeq(INT)) == [[1, 10], [2, 20]]

    def test_seq_cons_single(self):
        out = O.apply_kernel("__seq_cons", [frame([7, 8], INT)])
        assert unframe(out, TSeq(INT)) == [[7], [8]]

    def test_seq_cons_deep(self):
        a = [[1], [2, 2]]
        b = [[], [3]]
        out = O.apply_kernel("__seq_cons",
                             [frame(a, TSeq(INT)), frame(b, TSeq(INT))])
        assert unframe(out, seq_of(INT, 2)) == [[[1], []], [[2, 2], [3]]]


class TestExtendedKernels:
    def test_flatten(self):
        v = [[[1], [2, 3]], [[], [4]]]
        out = O.apply_kernel("flatten", [frame(v, seq_of(INT, 2))])
        assert unframe(out, TSeq(INT)) == oracle("flatten", v)

    def test_flatten_is_descriptor_surgery(self):
        v = frame([[[1], [2, 3]]], seq_of(INT, 2))
        out = O.apply_kernel("flatten", [v])
        assert out.values is v.values

    def test_concat(self):
        v = [[1, 2], []]
        w = [[3], [4, 5]]
        out = O.apply_kernel("concat", [frame(v, TSeq(INT)), frame(w, TSeq(INT))])
        assert unframe(out, TSeq(INT)) == oracle("concat", v, w)

    def test_concat_deep(self):
        v = [[[1]], [[2], [3]]]
        w = [[[9, 9]], []]
        out = O.apply_kernel("concat",
                             [frame(v, seq_of(INT, 2)), frame(w, seq_of(INT, 2))])
        assert unframe(out, seq_of(INT, 2)) == [[[1], [9, 9]], [[2], [3]]]

    @pytest.mark.parametrize("name", ["sum", "maxval", "minval"])
    def test_reductions(self, name):
        v = [[3, 1, 4], [5, 9]]
        out = O.apply_kernel(name, [frame(v, TSeq(INT))])
        assert unframe(out, INT) == oracle(name, v)

    def test_sum_empty_segments(self):
        out = O.apply_kernel("sum", [frame([[], [1]], TSeq(INT))])
        assert unframe(out, INT) == [0, 1]

    def test_maxval_empty_segment_errors(self):
        with pytest.raises(VectorError):
            O.apply_kernel("maxval", [frame([[]], TSeq(INT))])

    def test_any_all(self):
        v = [[True, False], [], [False]]
        assert unframe(O.apply_kernel("anytrue", [frame(v, TSeq(BOOL))]), BOOL) == \
            oracle("anytrue", v)
        assert unframe(O.apply_kernel("alltrue", [frame(v, TSeq(BOOL))]), BOOL) == \
            oracle("alltrue", v)

    def test_scans(self):
        v = [[1, 2, 3], [10, 20]]
        out = O.apply_kernel("plus_scan", [frame(v, TSeq(INT))])
        assert unframe(out, TSeq(INT)) == oracle("plus_scan", v)
        out = O.apply_kernel("max_scan", [frame(v, TSeq(INT))])
        assert unframe(out, TSeq(INT)) == oracle("max_scan", v)


class TestTupleFrames:
    def test_kernels_map_over_tuple_components(self):
        t = TTuple((INT, INT))
        v = [[(1, 10), (2, 20)], [(3, 30)]]
        i = [2, 1]
        out = O.apply_kernel("seq_index",
                             [frame(v, TSeq(t)), frame(i, INT)])
        assert unframe(out, t) == [(2, 20), (3, 30)]

    def test_dist_tuple(self):
        v = [(1, True), (2, False)]
        out = O.apply_kernel("dist", [frame(v, TTuple((INT, BOOL))),
                                      frame([2, 1], INT)])
        assert unframe(out, TSeq(TTuple((INT, BOOL)))) == \
            [[(1, True), (1, True)], [(2, False)]]


class TestBroadcast:
    def test_scalar(self):
        out = O.broadcast_to_count(7, 3)
        assert unframe(out, INT) == [7, 7, 7]

    def test_bool(self):
        out = O.broadcast_to_count(True, 2)
        assert unframe(out, BOOL) == [True, True]

    def test_sequence(self):
        v = from_python([[1], [2, 3]], seq_of(INT, 2))
        out = O.broadcast_to_count(v, 2)
        assert unframe(out, seq_of(INT, 2)) == [[[1], [2, 3]], [[1], [2, 3]]]

    def test_tuple(self):
        v = from_python((1, [2]), TTuple((INT, TSeq(INT))))
        out = O.broadcast_to_count(v, 2)
        assert unframe(out, TTuple((INT, TSeq(INT)))) == [(1, [2]), (1, [2])]

    def test_function(self):
        out = O.broadcast_to_count(VFun("add"), 2)
        assert out.kind == "fun" and out.top_length == 2

    def test_zero_count(self):
        out = O.broadcast_to_count(5, 0)
        assert unframe(out, INT) == []


class TestEmptyFrameValue:
    def test_flat(self):
        v = O.empty_frame_value(TSeq(INT))
        assert unframe(v, INT) == []

    def test_nested(self):
        v = O.empty_frame_value(seq_of(BOOL, 3))
        assert to_python(v, seq_of(BOOL, 3)) == []

    def test_tuple_elems(self):
        v = O.empty_frame_value(TSeq(TTuple((INT, BOOL))))
        assert isinstance(v, VTuple)
        assert to_python(v, TSeq(TTuple((INT, BOOL)))) == []

    def test_non_seq_rejected(self):
        with pytest.raises(VectorError):
            O.empty_frame_value(INT)
