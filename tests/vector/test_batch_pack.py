"""The batch pack/unpack representation manipulations (repro.vector.batch).

Law: ``unpack_values(pack_values(vs, t), t, len(vs))`` is element-wise
equal to ``vs``, and the packed frame is exactly one descriptor level
deeper with top descriptor ``[N]``.
"""

import random

import numpy as np
import pytest

from repro.errors import InvariantError, VectorError
from repro.guard import GuardConfig, guarded
from repro.lang.types import INT, TBool, TFun, TTuple, parse_type, seq_of
from repro.vector.batch import pack_values, unpack_values
from repro.vector.convert import from_python, to_python
from repro.vector.nested import NestedVector, VFun, VTuple


def rt(pyvals, tstr):
    """Round-trip ``pyvals`` (each of P type ``tstr``) through pack/unpack."""
    t = parse_type(tstr)
    vs = [from_python(v, t) for v in pyvals]
    packed = pack_values(vs, t)
    back = unpack_values(packed, t, len(vs))
    return packed, [to_python(b, t) for b in back]


class TestRoundTrip:
    def test_scalars(self):
        packed, back = rt([3, -1, 0, 997], "int")
        assert isinstance(packed, NestedVector)
        assert packed.depth == 1 and packed.top_length == 4
        assert back == [3, -1, 0, 997]

    def test_bools_and_floats(self):
        _p, back = rt([True, False, True], "bool")
        assert back == [True, False, True]
        _p, back = rt([1.5, -0.25], "float")
        assert back == [1.5, -0.25]

    def test_seq_int_adds_one_level(self):
        vals = [[1, 2, 3], [], [7]]
        packed, back = rt(vals, "seq(int)")
        assert packed.depth == 2
        assert packed.descs[0].tolist() == [3]       # the batch level
        assert packed.descs[1].tolist() == [3, 0, 1]  # per-request lengths
        assert back == vals

    def test_nested_seq(self):
        vals = [[[1], [2, 3]], [], [[], [4, 5, 6], []]]
        packed, back = rt(vals, "seq(seq(int))")
        assert packed.depth == 3
        assert packed.descs[0].tolist() == [3]
        assert packed.descs[1].tolist() == [2, 0, 3]
        assert back == vals

    def test_tuples_pack_componentwise(self):
        vals = [(1, [2, 3]), (4, []), (5, [6])]
        packed, back = rt(vals, "(int, seq(int))")
        assert isinstance(packed, VTuple)
        assert back == vals

    def test_seq_of_tuples(self):
        vals = [[(1, True)], [], [(2, False), (3, True)]]
        _packed, back = rt(vals, "seq((int, bool))")
        assert back == vals

    def test_fun_values(self):
        t = TFun((INT, INT), INT)
        vs = [VFun("add"), VFun("max2"), VFun("add")]
        packed = pack_values(vs, t)
        assert packed.kind == "fun" and packed.top_length == 3
        assert unpack_values(packed, t, 3) == vs

    def test_singleton_batch(self):
        _p, back = rt([[1, 2]], "seq(int)")
        assert back == [[1, 2]]

    @pytest.mark.parametrize("seed", range(20))
    def test_random_deep(self, seed):
        rng = random.Random(seed)
        vals = [[[rng.randrange(100) for _ in range(rng.randrange(4))]
                 for _ in range(rng.randrange(4))]
                for _ in range(rng.randrange(1, 6))]
        _p, back = rt(vals, "seq(seq(int))")
        assert back == vals


class TestErrors:
    def test_empty_batch_rejected(self):
        with pytest.raises(VectorError, match="empty batch"):
            pack_values([], INT)

    def test_mixed_depth_rejected(self):
        t = seq_of(INT)
        a = from_python([1], t)
        b = from_python([[1]], seq_of(INT, 2))
        with pytest.raises(VectorError, match="mixed batch"):
            pack_values([a, b], t)

    def test_wrong_count_on_unpack(self):
        t = seq_of(INT)
        packed = pack_values([from_python([1], t), from_python([2], t)], t)
        with pytest.raises(VectorError, match="batch of 2"):
            unpack_values(packed, t, 3)

    def test_tuple_shape_mismatch(self):
        t = TTuple((INT, TBool()))
        with pytest.raises(VectorError):
            pack_values([3], t)


class TestGuardBoundary:
    """Strict mode validates the descriptor invariant at the pack/unpack
    boundary, so a corrupt batch is caught at the serving layer."""

    def test_pack_checked_under_guard(self):
        t = seq_of(INT)
        vs = [from_python([1, 2], t), from_python([3], t)]
        with guarded(GuardConfig(check=True)):
            packed = pack_values(vs, t)           # valid: no raise
            assert unpack_values(packed, t, 2)

    def test_corrupt_batch_caught_on_unpack(self):
        t = seq_of(INT)
        vs = [from_python([1, 2], t), from_python([3], t)]
        packed = pack_values(vs, t)
        evil = NestedVector.__new__(NestedVector)
        evil.descs = (packed.descs[0], np.array([2, 2]))  # lies: sum != 3
        evil.values = packed.values
        evil.kind = packed.kind
        with guarded(GuardConfig(check=True)):
            with pytest.raises(InvariantError) as ei:
                unpack_values(evil, t, 2)
            assert "batch:unpack" in str(ei.value)
