"""Unit tests for the segmented kernels (CVL substitute)."""

import numpy as np
import pytest

from repro.errors import VectorError
from repro.vector import segments as S


def arr(x):
    return np.asarray(x, dtype=np.int64)


class TestBasics:
    def test_seg_starts(self):
        assert S.seg_starts(arr([3, 0, 2])).tolist() == [0, 3, 3]

    def test_seg_starts_empty(self):
        assert S.seg_starts(arr([])).tolist() == []

    def test_seg_iota(self):
        assert S.seg_iota(arr([3, 0, 2])).tolist() == [0, 1, 2, 0, 1]

    def test_seg_iota_all_empty(self):
        assert S.seg_iota(arr([0, 0])).tolist() == []

    def test_as_counts_rejects_negative(self):
        with pytest.raises(VectorError):
            S.as_counts(arr([1, -1]))

    def test_as_counts_rejects_2d(self):
        with pytest.raises(VectorError):
            S.as_counts(np.zeros((2, 2), dtype=np.int64))


class TestReductions:
    def test_seg_sum(self):
        v = arr([1, 2, 3, 4, 5])
        assert S.seg_sum(v, arr([2, 0, 3])).tolist() == [3, 0, 12]

    def test_seg_sum_empty_input(self):
        assert S.seg_sum(arr([]), arr([])).tolist() == []

    def test_seg_max(self):
        v = arr([1, 9, 3, 4])
        assert S.seg_max(v, arr([2, 2])).tolist() == [9, 4]

    def test_seg_max_empty_segment_errors(self):
        with pytest.raises(VectorError):
            S.seg_max(arr([1]), arr([1, 0]))

    def test_seg_min(self):
        v = arr([5, 2, 7, 1])
        assert S.seg_min(v, arr([3, 1])).tolist() == [2, 1]

    def test_seg_any_all(self):
        v = np.array([True, False, False, False, True])
        assert S.seg_any(v, arr([2, 2, 1])).tolist() == [True, False, True]
        assert S.seg_all(v, arr([2, 2, 1])).tolist() == [False, False, True]

    def test_seg_any_empty_segment(self):
        assert S.seg_any(np.array([], dtype=bool), arr([0])).tolist() == [False]
        assert S.seg_all(np.array([], dtype=bool), arr([0])).tolist() == [True]


class TestScans:
    def test_plus_scan_exclusive(self):
        v = arr([1, 2, 3, 4, 5])
        out = S.seg_plus_scan(v, arr([3, 2]))
        assert out.tolist() == [0, 1, 3, 0, 4]

    def test_plus_scan_with_empty_segments(self):
        v = arr([1, 2])
        out = S.seg_plus_scan(v, arr([0, 1, 0, 1]))
        assert out.tolist() == [0, 0]

    def test_plus_scan_empty(self):
        assert S.seg_plus_scan(arr([]), arr([0, 0])).tolist() == []

    def test_max_scan_inclusive(self):
        v = arr([3, 1, 4, 1, 5, 9, 2, 6])
        out = S.seg_max_scan(v, arr([4, 4]))
        assert out.tolist() == [3, 3, 4, 4, 5, 9, 9, 9]

    def test_max_scan_resets_at_segments(self):
        v = arr([9, 1, 2])
        out = S.seg_max_scan(v, arr([1, 2]))
        assert out.tolist() == [9, 1, 2]

    def test_max_scan_single_pass_sizes(self):
        rng = np.random.default_rng(0)
        v = rng.integers(-100, 100, size=50)
        counts = arr([7, 0, 13, 30])
        out = S.seg_max_scan(v, counts)
        expect = []
        pos = 0
        for c in counts:
            seg = v[pos:pos + c]
            expect.extend(np.maximum.accumulate(seg).tolist() if c else [])
            pos += c
        assert out.tolist() == expect


class TestTileAndGather:
    def test_tile_idx(self):
        assert S.tile_idx(arr([2, 1]), arr([2, 3])).tolist() == [0, 1, 0, 1, 2, 2, 2]

    def test_tile_idx_zero_reps(self):
        assert S.tile_idx(arr([2, 1]), arr([0, 2])).tolist() == [2, 2]

    def test_tile_idx_shape_mismatch(self):
        with pytest.raises(VectorError):
            S.tile_idx(arr([1]), arr([1, 2]))

    def test_gather_flat(self):
        levels = [arr([10, 20, 30])]
        out = S.gather_subtrees(levels, arr([2, 0, 0]))
        assert out[0].tolist() == [30, 10, 10]

    def test_gather_one_level(self):
        # forest: subtree sizes [2,1,3]; leaves 1..6
        levels = [arr([2, 1, 3]), arr([1, 2, 3, 4, 5, 6])]
        out = S.gather_subtrees(levels, arr([2, 0]))
        assert out[0].tolist() == [3, 2]
        assert out[1].tolist() == [4, 5, 6, 1, 2]

    def test_gather_two_levels(self):
        # [[ [1,2],[3] ], [ [4] ]] : top counts [2,1], mid [2,1,1]
        levels = [arr([2, 1]), arr([2, 1, 1]), arr([1, 2, 3, 4])]
        out = S.gather_subtrees(levels, arr([1, 0, 0]))
        assert out[0].tolist() == [1, 2, 2]
        assert out[1].tolist() == [1, 2, 1, 2, 1]
        assert out[2].tolist() == [4, 1, 2, 3, 1, 2, 3]

    def test_gather_empty_idx(self):
        levels = [arr([2, 1]), arr([1, 2, 3])]
        out = S.gather_subtrees(levels, arr([]))
        assert out[0].tolist() == []
        assert out[1].tolist() == []

    def test_concat_levels(self):
        a = [arr([1]), arr([5])]
        b = [arr([2]), arr([6, 7])]
        out = S.concat_levels(a, b)
        assert out[0].tolist() == [1, 2]
        assert out[1].tolist() == [5, 6, 7]
        # gathering subtree 1 from the pool gives b's subtree
        got = S.gather_subtrees(out, arr([1]))
        assert got[1].tolist() == [6, 7]

    def test_concat_levels_depth_mismatch(self):
        with pytest.raises(VectorError):
            S.concat_levels([arr([1])], [arr([1]), arr([2])])

    def test_check_counts_consistent(self):
        S.check_counts_consistent([arr([2]), arr([1, 1]), arr([9, 9])])
        with pytest.raises(VectorError):
            S.check_counts_consistent([arr([2]), arr([1])])
