"""Property tests (seeded, no external dependency): random nested values
always satisfy the descriptor invariant, and extract/insert round-trip at
every legal depth — the paper's section-4.2 law insert(extract(V,d),V,d)=V.
"""

import random

import numpy as np
import pytest

from repro.guard.invariants import validate_value
from repro.lang.types import parse_type
from repro.vector.convert import from_python, to_python
from repro.vector.extract_insert import extract, insert
from repro.vector.nested import NestedVector

SEEDS = range(10)
DEPTHS = (1, 2, 3, 4)


def seq_type(depth: int):
    s = "int"
    for _ in range(depth):
        s = f"seq({s})"
    return parse_type(s)


def random_nested(rng: random.Random, depth: int, fanout: int = 4):
    """A random nested list of ints of exactly ``depth`` levels, with
    empty sequences allowed at every level."""
    if depth == 0:
        return rng.randrange(-50, 51)
    return [random_nested(rng, depth - 1, fanout)
            for _ in range(rng.randrange(0, fanout + 1))]


def same_nested(a: NestedVector, b: NestedVector) -> bool:
    return (len(a.descs) == len(b.descs)
            and all(np.array_equal(x, y) for x, y in zip(a.descs, b.descs))
            and np.array_equal(a.values, b.values))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("depth", DEPTHS)
def test_random_values_satisfy_invariant(seed, depth):
    rng = random.Random(seed * 1000 + depth)
    py = random_nested(rng, depth)
    v = from_python(py, seq_type(depth))
    validate_value("property", v)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("depth", DEPTHS)
def test_python_roundtrip(seed, depth):
    rng = random.Random(seed * 2000 + depth)
    py = random_nested(rng, depth)
    t = seq_type(depth)
    assert to_python(from_python(py, t), t) == py


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("depth", DEPTHS)
def test_extract_insert_roundtrip_every_legal_d(seed, depth):
    rng = random.Random(seed * 3000 + depth)
    py = random_nested(rng, depth)
    v = from_python(py, seq_type(depth))
    assert isinstance(v, NestedVector)
    for d in range(1, v.depth + 1):
        r = extract(v, d)
        validate_value(f"extract(d={d})", r)
        back = insert(r, v, d)
        validate_value(f"insert(d={d})", back)
        assert same_nested(back, v), f"round-trip broke at depth {d}"


@pytest.mark.parametrize("seed", SEEDS)
def test_extract_flattens_top_levels(seed):
    rng = random.Random(seed)
    py = random_nested(rng, 3)
    v = from_python(py, seq_type(3))
    for d in range(2, v.depth + 1):
        r = extract(v, d)
        # top descriptor becomes a singleton summarizing the flattened
        # frame; the value vector is untouched
        assert r.descs[0].size == 1
        assert np.array_equal(r.values, v.values)
        assert len(r.descs) == len(v.descs) - d + 1
