"""The thread-safe LRU compile cache: hit/miss accounting, LRU eviction,
options keying, in-flight deduplication, and failure non-caching."""

import threading
import time

import pytest

from repro.api import compile_program
from repro.errors import ParseError, ReproError
from repro.serve import CompileCache, cache_key
from repro.transform.pipeline import TransformOptions

SRC = "fun main(n) = [i <- [1..n]: i * i]"


def counting_cache(capacity=8, delay=0.0):
    """A cache whose compile function counts invocations (thread-safely)."""
    lock = threading.Lock()
    calls = {"n": 0, "sources": []}

    def compile_fn(source, use_prelude, options):
        with lock:
            calls["n"] += 1
            calls["sources"].append(source)
        if delay:
            time.sleep(delay)
        return compile_program(source, use_prelude=use_prelude,
                               options=options)

    return CompileCache(capacity, compile_fn=compile_fn), calls


class TestBasics:
    def test_hit_returns_same_object(self):
        cache = CompileCache(4)
        a = cache.get(SRC)
        b = cache.get(SRC)
        assert a is b
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_distinct_sources_distinct_entries(self):
        cache, calls = counting_cache()
        cache.get(SRC)
        cache.get(SRC + "\nfun g(n) = n")
        assert calls["n"] == 2 and len(cache) == 2

    def test_options_are_part_of_the_key(self):
        cache, calls = counting_cache()
        a = cache.get(SRC)
        b = cache.get(SRC, options=TransformOptions(fuse=True))
        assert a is not b and calls["n"] == 2
        assert cache.get(SRC) is a          # still cached

    def test_key_function_is_stable(self):
        assert cache_key(SRC, None) == cache_key(SRC, TransformOptions())
        assert cache_key(SRC, TransformOptions(fuse=True)) != \
            cache_key(SRC, TransformOptions())

    def test_compiled_program_actually_runs(self):
        cache = CompileCache(2)
        assert cache.get(SRC).run("main", [4]) == [1, 4, 9, 16]


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        cache, calls = counting_cache(capacity=2)
        s1, s2, s3 = SRC, SRC + " fun a(n) = n", SRC + " fun b(n) = n"
        cache.get(s1)
        cache.get(s2)
        cache.get(s1)            # refresh s1: s2 is now the LRU entry
        cache.get(s3)            # evicts s2
        assert cache.evictions == 1
        cache.get(s1)            # hit
        cache.get(s2)            # recompile
        assert calls["sources"].count(s2) == 2
        assert calls["sources"].count(s1) == 1

    def test_capacity_one(self):
        cache, calls = counting_cache(capacity=1)
        cache.get(SRC)
        cache.get(SRC + " fun a(n) = n")
        cache.get(SRC)
        assert calls["n"] == 3 and len(cache) == 1


class TestFailures:
    def test_compile_error_propagates_and_is_not_cached(self):
        cache = CompileCache(4)
        with pytest.raises(ReproError):
            cache.get("fun main( = broken")
        assert len(cache) == 0
        with pytest.raises(ParseError):
            cache.get("fun main( = broken")   # retried, not poisoned
        assert cache.misses == 2

    def test_failure_then_success_on_same_cache(self):
        cache = CompileCache(4)
        with pytest.raises(ReproError):
            cache.get("fun main( = broken")
        assert cache.get(SRC).run("main", [2]) == [1, 4]


class TestConcurrency:
    def test_concurrent_identical_keys_compile_once(self):
        """The thundering-herd guarantee: 12 threads, one compile."""
        cache, calls = counting_cache(capacity=8, delay=0.05)
        results = [None] * 12
        barrier = threading.Barrier(12)

        def worker(i):
            barrier.wait()
            results[i] = cache.get(SRC)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(12)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert calls["n"] == 1
        assert all(r is results[0] for r in results)
        assert cache.misses == 1 and cache.hits == 11

    def test_concurrent_mixed_keys(self):
        cache, calls = counting_cache(capacity=32, delay=0.01)
        sources = [f"fun main(n) = n + {k}" for k in range(4)]
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            for k in range(4):
                cache.get(sources[(i + k) % 4])

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert calls["n"] == 4               # one compile per distinct source
        assert cache.hits + cache.misses == 32

    def test_concurrent_failure_delivered_to_all_waiters(self):
        cache, _calls = counting_cache(capacity=4, delay=0.05)
        errors = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            try:
                cache.get("fun main( = broken")
            except ReproError as e:
                errors.append(e)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        assert len(errors) == 6
        assert len(cache) == 0
