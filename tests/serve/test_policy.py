"""Unit battery for the pure serving policies (repro.serve.policy):
retry backoff arithmetic, the circuit-breaker automaton (with an
injected clock — no sleeps), and stable shard placement."""

import random

import pytest

from repro.serve.policy import (
    CircuitBreaker, HashRing, RetryPolicy, shard_of, stable_hash,
)


# -- RetryPolicy ----------------------------------------------------------

def test_retry_allows_bounded():
    p = RetryPolicy(max_retries=2)
    assert p.allows(1) and p.allows(2)
    assert not p.allows(3)
    assert not RetryPolicy(max_retries=0).allows(1)


def test_backoff_exponential_and_capped():
    p = RetryPolicy(base_backoff_s=0.1, multiplier=2.0, max_backoff_s=0.5,
                    jitter=0.0)
    assert p.backoff_s(1) == pytest.approx(0.1)
    assert p.backoff_s(2) == pytest.approx(0.2)
    assert p.backoff_s(3) == pytest.approx(0.4)
    assert p.backoff_s(4) == pytest.approx(0.5)     # capped
    assert p.backoff_s(10) == pytest.approx(0.5)


def test_backoff_jitter_bounds():
    p = RetryPolicy(base_backoff_s=1.0, multiplier=1.0, max_backoff_s=1.0,
                    jitter=0.5)
    rng = random.Random(7)
    delays = [p.backoff_s(1, rng) for _ in range(200)]
    assert all(0.5 <= d <= 1.5 for d in delays)
    assert max(delays) - min(delays) > 0.1          # actually jittered


# -- CircuitBreaker -------------------------------------------------------

class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def test_breaker_opens_after_k_consecutive():
    b = CircuitBreaker(failures=3, cooldown_s=5.0, clock=Clock())
    assert b.record_failure() is False
    assert b.record_failure() is False
    assert b.record_failure() is True       # the trip is reported once
    assert b.state == "open"
    assert not b.allow()
    assert b.opens == 1


def test_breaker_success_resets_consecutive_count():
    b = CircuitBreaker(failures=2, cooldown_s=5.0, clock=Clock())
    b.record_failure()
    b.record_success()
    assert b.record_failure() is False      # streak restarted
    assert b.state == "closed"


def test_breaker_half_open_probe_closes_on_success():
    clock = Clock()
    b = CircuitBreaker(failures=1, cooldown_s=5.0, clock=clock)
    b.record_failure()
    assert b.state == "open" and not b.allow()
    clock.t = 5.1
    assert b.allow()                        # exactly one probe admitted
    assert b.state == "half-open"
    assert not b.allow()                    # second caller still blocked
    assert b.probes == 1
    b.record_success()
    assert b.state == "closed" and b.allow()


def test_breaker_failed_probe_escalates_cooldown():
    clock = Clock()
    b = CircuitBreaker(failures=1, cooldown_s=2.0, escalation=2.0,
                       max_cooldown_s=6.0, clock=clock)
    b.record_failure()
    clock.t = 2.1
    assert b.allow()
    assert b.record_failure() is True       # failed probe re-opens
    assert b.state == "open" and b.opens == 2
    clock.t = 4.5                           # 2.4s later: cooldown now 4s
    assert not b.allow()
    clock.t = 6.2
    assert b.allow()
    b.record_failure()                      # escalates again, capped at 6
    clock.t = 12.5
    assert b.allow()
    b.record_success()
    b.record_failure()                      # cooldown back to the base 2s
    clock.t = 14.6
    assert b.allow()


def test_breaker_permanent_when_cooldown_none():
    clock = Clock()
    b = CircuitBreaker(failures=1, cooldown_s=None, clock=clock)
    b.record_failure()
    clock.t = 1e9
    assert not b.allow()                    # never re-probes: PR-7 demotion
    assert b.state == "open"


def test_breaker_rejects_bad_threshold():
    with pytest.raises(ValueError):
        CircuitBreaker(failures=0)


# -- sharding -------------------------------------------------------------

def test_stable_hash_is_process_stable():
    # pinned values: Python's salted hash() would break these across runs
    assert stable_hash(("k", 1)) == stable_hash(("k", 1))
    assert stable_hash("a") != stable_hash("b")


def test_shard_of_in_range_and_deterministic():
    keys = [("src", i, "f") for i in range(100)]
    shards = [shard_of(k, 4) for k in keys]
    assert all(0 <= s < 4 for s in shards)
    assert shards == [shard_of(k, 4) for k in keys]
    assert len(set(shards)) > 1             # not everything on one worker


def test_hash_ring_lookup_stable_and_balanced():
    ring = HashRing(4)
    keys = [f"key-{i}" for i in range(400)]
    owners = [ring.lookup(k) for k in keys]
    assert owners == [ring.lookup(k) for k in keys]
    counts = [owners.count(s) for s in range(4)]
    assert all(c > 0 for c in counts)


def test_hash_ring_minimal_movement_on_growth():
    # the consistent-hashing property: adding a slot moves only a
    # fraction of the keys
    small, big = HashRing(4), HashRing(5)
    keys = [f"key-{i}" for i in range(500)]
    moved = sum(1 for k in keys if small.lookup(k) != big.lookup(k))
    assert moved < len(keys) * 0.6


def test_hash_ring_rejects_zero_slots():
    with pytest.raises(ValueError):
        HashRing(0)
