"""Predicted-budget admission control and predicted-work tiering.

The serving layer consults the static cost certificate at ``submit``:
a budgeted request whose *predicted* work already exceeds its budget is
rejected synchronously — before compilation, queueing, or execution —
with ``ResourceLimitError("predicted-…")``, while anything the analyzer
cannot bound is admitted and left to the runtime guard (the enforcement
backstop, pinned in tests/serve/test_deadlines.py).  The same
certificate drives tier promotion: hot batch keys are promoted to the
native back end by predicted work *served*, not raw request count, so
one huge request can promote immediately while tiny requests still need
``native_after`` of them."""

import pytest

from repro.api import compile_program
from repro.errors import ResourceLimitError
from repro.guard.runtime import Budget
from repro.serve.batcher import BatchExecutor, ServeConfig

SRC = "fun main(n) = sum([i <- [1..n]: i * i])"
RECURSIVE = "fun main(n) = if n <= 0 then 0 else n + main(n - 1)"


def predicted(n):
    prog = compile_program(SRC)
    cert = prog.cost_certificate("main", prog.entry_types("main", [n]))
    p = cert.predict([n])
    assert p["bounded"]
    return p


class TestAdmission:
    def test_over_budget_rejected_before_queueing(self):
        with BatchExecutor() as ex:
            with pytest.raises(ResourceLimitError) as ei:
                ex.submit(SRC, "main", [500], budget=Budget(max_steps=10),
                          request_id="req-heavy")
            assert ei.value.limit == "predicted-steps"
            assert ei.value.stage == "serve:submit"
            assert ei.value.request == "req-heavy"
            snap = ex.stats.snapshot()
            assert snap["predicted_rejections"] == 1
            # never queued, never executed
            assert snap["batches"] == 0 and snap["singles"] == 0
            assert snap["errors"] == 0

    def test_every_budget_axis_is_checked(self):
        w = predicted(500)["work"]
        cases = [(Budget(max_steps=w - 1), "predicted-steps"),
                 (Budget(max_elements=w - 1), "predicted-elements"),
                 (Budget(max_bytes=8 * w - 1), "predicted-bytes")]
        with BatchExecutor() as ex:
            for budget, limit in cases:
                with pytest.raises(ResourceLimitError) as ei:
                    ex.submit(SRC, "main", [500], budget=budget)
                assert ei.value.limit == limit

    def test_within_budget_admitted_and_served(self):
        p = predicted(20)
        budget = Budget(max_steps=p["work"], max_bytes=8 * p["work"])
        with BatchExecutor() as ex:
            fut = ex.submit(SRC, "main", [20], budget=budget)
            assert fut.result(30) == sum(i * i for i in range(1, 21))
            assert ex.stats.snapshot()["predicted_rejections"] == 0

    def test_unbounded_program_falls_through_to_runtime_guard(self):
        """The analyzer widens data-dependent recursion to unbounded;
        such requests are admitted, and the *runtime* guard still
        enforces the budget."""
        with BatchExecutor() as ex:
            fut = ex.submit(RECURSIVE, "main", [500],
                            budget=Budget(max_steps=10))
            err = fut.exception(timeout=30)
        assert isinstance(err, ResourceLimitError)
        assert err.limit == "steps"           # runtime, not predicted-steps
        assert ex.stats.snapshot()["predicted_rejections"] == 0

    def test_predict_admission_off_is_pure_passthrough(self):
        with BatchExecutor(ServeConfig(predict_admission=False)) as ex:
            fut = ex.submit(SRC, "main", [500], budget=Budget(max_steps=1))
            err = fut.exception(timeout=30)
        assert isinstance(err, ResourceLimitError)
        assert err.limit == "steps"
        assert ex.stats.snapshot()["predicted_rejections"] == 0

    def test_unbudgeted_requests_skip_admission(self, monkeypatch):
        """Admission only engages when a budget is set: requests without
        one never reach the rejection path (the predictor may still run
        for tier weighting, which must not reject anything)."""
        def boom(self, req):
            raise AssertionError("admission consulted without a budget")
        monkeypatch.setattr(BatchExecutor, "_admit", boom)
        with BatchExecutor() as ex:
            assert ex.submit(SRC, "main", [4]).result(30) == 30

    def test_prediction_failure_degrades_to_admission(self, monkeypatch):
        """A crash inside the predictor must never reject a request —
        unpredictable means admit-and-enforce-at-runtime."""
        monkeypatch.setattr(
            "repro.api.CompiledProgram.cost_certificate",
            lambda *a, **kw: (_ for _ in ()).throw(RuntimeError("boom")))
        with BatchExecutor() as ex:
            fut = ex.submit(SRC, "main", [500], budget=Budget(max_steps=1))
            err = fut.exception(timeout=30)
        assert isinstance(err, ResourceLimitError)
        assert err.limit == "steps"


class TestPredictedWorkTiering:
    """Tier promotion counts predicted work served (quantized by
    ``tier_unit_work``), with unpredictable keys degrading to the old
    one-unit-per-request accounting."""

    @staticmethod
    def _native_counter(monkeypatch):
        from repro.api import CompiledProgram
        monkeypatch.setattr("repro.native.toolchain.available",
                            lambda: True)
        orig = CompiledProgram.run
        calls = {"native": 0}

        def fake(self, fname, args, **kw):
            if kw.get("backend") == "native":
                calls["native"] += 1
                kw = dict(kw, backend="vector")
            return orig(self, fname, args, **kw)

        monkeypatch.setattr(CompiledProgram, "run", fake)
        return calls

    def test_one_heavy_request_promotes_immediately(self, monkeypatch):
        calls = self._native_counter(monkeypatch)
        w = predicted(200)["work"]
        cfg = ServeConfig(native_after=3, tier_unit_work=w // 8)
        with BatchExecutor(cfg) as ex:     # one request ≈ 8 units > 3
            assert ex.submit(SRC, "main", [200]).result(30) == \
                sum(i * i for i in range(1, 201))
        assert calls["native"] == 1
        assert ex.stats.promotions == 1

    def test_tiny_requests_still_need_native_after_of_them(self,
                                                           monkeypatch):
        """Small programs predict under one work unit, so each counts as
        one — the pre-existing request-count contract is preserved."""
        calls = self._native_counter(monkeypatch)
        with BatchExecutor(ServeConfig(native_after=3)) as ex:
            for _ in range(3):             # weight 1 each: still cold
                assert ex.submit(SRC, "main", [2]).result(30) == 5
            assert calls["native"] == 0
            assert ex.submit(SRC, "main", [2]).result(30) == 5
            assert calls["native"] == 1    # fourth crosses the threshold
        assert ex.stats.promotions == 1

    def test_unpredictable_key_degrades_to_request_counting(self,
                                                            monkeypatch):
        calls = self._native_counter(monkeypatch)
        with BatchExecutor(ServeConfig(native_after=2)) as ex:
            for _ in range(2):
                ex.submit(RECURSIVE, "main", [3]).result(30)
            assert calls["native"] == 0
            ex.submit(RECURSIVE, "main", [3]).result(30)
            assert calls["native"] == 1
        assert ex.stats.promotions == 1

    def test_tier_unit_work_zero_restores_pure_counting(self, monkeypatch):
        calls = self._native_counter(monkeypatch)
        cfg = ServeConfig(native_after=2, tier_unit_work=0)
        with BatchExecutor(cfg) as ex:
            for _ in range(2):             # heavy, but counted as 1 each
                ex.submit(SRC, "main", [200]).result(30)
            assert calls["native"] == 0
            ex.submit(SRC, "main", [200]).result(30)
            assert calls["native"] == 1
