"""Chaos battery for the worker pool: seeded process faults injected at
the registered ``pool.worker.*`` sites must be *contained* — each victim
request resolves with a typed error naming it (or a transparent retry),
batchmates on other workers are untouched, and the pool recovers to its
full worker count.  The per-site containment contracts themselves are
exercised one-by-one in tests/guard/test_process_faults.py; this file
covers the mixed/recovery scenarios plus the deadline-kill of a stuck
worker with live batchmates elsewhere."""

import time

import pytest

from repro.errors import ResourceLimitError, WorkerCrashError
from repro.guard import PROCESS_FAULT_SITES, ChaosSpec
from repro.serve import PoolConfig, RetryPolicy, WorkerPool
from repro.serve.cache import cache_key
from repro.serve.policy import HashRing

SRC = "fun main(x) = x * x + 1;"


def chaos_cfg(chaos, **kw) -> PoolConfig:
    kw.setdefault("workers", 2)
    kw.setdefault("native_after", 0)
    kw.setdefault("respawn_backoff_s", 0.05)
    kw.setdefault("supervise_s", 0.05)
    return PoolConfig(chaos=chaos, **kw)


def wait_recovered(pool, n=2, timeout=20.0):
    deadline = time.monotonic() + timeout
    while pool.healthy_workers() < n and time.monotonic() < deadline:
        time.sleep(0.05)
    return pool.healthy_workers()


def shard_for(src: str, workers: int = 2) -> int:
    key = (cache_key(src, None, True), "main", None, "vector", False)
    return HashRing(workers).lookup(key)


def test_abort_storm_contained_and_recovered():
    """Workers randomly os._exit(70) mid-request at 30%: every request
    still resolves (value or a typed crash error naming it), the
    supervisor respawns the dead workers, and the pool ends healthy."""
    chaos = ChaosSpec(sites=("pool.worker.abort",), rate=0.3, seed=11)
    n = 30
    # max_batch=1: every request is its own dispatch group, so each rid
    # rolls the chaos dice itself (coalesced batches consult only the
    # group leader)
    with WorkerPool(chaos_cfg(chaos, max_batch=1,
                              retry=RetryPolicy(max_retries=1))) as pool:
        futs = {f"a{i}": pool.submit(SRC, "main", [i], request_id=f"a{i}")
                for i in range(n)}
        ok = crashed = 0
        for rid, f in futs.items():
            e = f.exception(timeout=120)
            if e is None:
                i = int(rid[1:])
                assert f.result() == i * i + 1
                ok += 1
            else:
                # deterministic chaos re-fires on retry, so victims whose
                # retries are exhausted fail typed — never silently
                assert isinstance(e, WorkerCrashError)
                assert rid in e.request_ids
                crashed += 1
        assert ok + crashed == n and ok > 0
        assert pool.stats.restarts > 0
        assert pool.stats.retries > 0
        assert wait_recovered(pool) == 2
        # and the recovered pool still serves
        assert pool.submit(SRC, "main", [7]).result(timeout=60) == 50


def test_abort_without_retry_fails_typed():
    chaos = ChaosSpec(sites=("pool.worker.abort",), rate=1.0, seed=1)
    with WorkerPool(chaos_cfg(chaos, retry=None)) as pool:
        e = pool.submit(SRC, "main", [2],
                        request_id="boom").exception(timeout=120)
        assert isinstance(e, WorkerCrashError)
        assert e.reason == "exit" and "boom" in e.request_ids
        assert pool.stats.retries == 0


def test_crash_blast_radius_is_one_shard():
    """A crashing batch key must not disturb a concurrent batch pinned to
    the other worker."""
    victim_src = SRC
    target = 1 - shard_for(victim_src)
    survivor_src = next(
        f"fun main(x) = x + {k};" for k in range(2, 50)
        if shard_for(f"fun main(x) = x + {k};") == target)
    # fire only for the doomed request's id, not the survivors' leader
    chaos = ChaosSpec(sites=("pool.worker.abort",), rate=0.5, seed=5)
    doomed_rid = next(f"d{i}" for i in range(1000)
                      if chaos.fires("pool.worker.abort", f"d{i}"))
    safe_rids = [r for i in range(1000)
                 if not chaos.fires("pool.worker.abort",
                                    r := f"s{i}")][:4]
    with WorkerPool(chaos_cfg(chaos, retry=None)) as pool:
        safe = [pool.submit(survivor_src, "main", [i], request_id=r)
                for i, r in enumerate(safe_rids)]
        doomed = pool.submit(victim_src, "main", [3],
                             request_id=doomed_rid)
        assert isinstance(doomed.exception(timeout=120), WorkerCrashError)
        for i, f in enumerate(safe):
            assert f.exception(timeout=120) is None, f.exception()
        assert pool.stats.crashes.get("exit", 0) >= 1


def test_deadline_kills_stuck_worker_batchmates_survive():
    """Satellite: a worker wedged past a request's deadline is killed and
    only that request fails — ResourceLimitError('timeout') naming it —
    while concurrent requests on the other worker complete."""
    victim_src = SRC
    target = 1 - shard_for(victim_src)
    survivor_src = next(
        f"fun main(x) = x + {k};" for k in range(2, 50)
        if shard_for(f"fun main(x) = x + {k};") == target)
    # fire the wedge only for the victim's request id
    chaos = ChaosSpec(sites=("pool.worker.slow-compile",), rate=0.5,
                      seed=3, slow_s=30.0)
    vic_rid = next(f"v{i}" for i in range(1000)
                   if chaos.fires("pool.worker.slow-compile", f"v{i}"))
    safe_rids = [r for i in range(1000)
                 if not chaos.fires("pool.worker.slow-compile",
                                    r := f"s{i}")][:4]
    with WorkerPool(chaos_cfg(chaos, retry=None,
                              deadline_grace_s=0.1)) as pool:
        victim = pool.submit(victim_src, "main", [2], deadline_s=0.8,
                             request_id=vic_rid)
        safe = [pool.submit(survivor_src, "main", [i], request_id=r)
                for i, r in enumerate(safe_rids)]
        t0 = time.monotonic()
        e = victim.exception(timeout=120)
        took = time.monotonic() - t0
        assert isinstance(e, ResourceLimitError)
        assert e.limit == "timeout" and e.request == vic_rid
        assert took < 25.0, "deadline enforcement waited out the wedge"
        for f in safe:
            assert f.exception(timeout=120) is None, f.exception()
        assert pool.stats.crashes.get("deadline", 0) >= 1
        assert pool.stats.expired >= 1
        assert wait_recovered(pool) == 2


def test_poisoned_response_detected_not_delivered():
    chaos = ChaosSpec(sites=("pool.worker.poisoned-response",), rate=1.0,
                      seed=2)
    with WorkerPool(chaos_cfg(chaos, retry=None)) as pool:
        e = pool.submit(SRC, "main", [4],
                        request_id="px").exception(timeout=120)
        assert isinstance(e, WorkerCrashError)
        assert e.reason == "poisoned-response" and "px" in e.request_ids
        assert wait_recovered(pool) == 2


def test_heartbeat_stall_detected_by_timeout():
    chaos = ChaosSpec(sites=("pool.worker.heartbeat-stall",), rate=1.0,
                      seed=4, stall_s=60.0)
    with WorkerPool(chaos_cfg(chaos, retry=None, heartbeat_s=0.1,
                              heartbeat_timeout_s=0.6)) as pool:
        t0 = time.monotonic()
        e = pool.submit(SRC, "main", [5],
                        request_id="hx").exception(timeout=120)
        took = time.monotonic() - t0
        assert isinstance(e, WorkerCrashError)
        assert e.reason == "lost-heartbeat" and "hx" in e.request_ids
        assert took < 30.0, "stall was waited out, not detected"
        assert wait_recovered(pool) == 2


def test_retry_masks_transient_crash():
    """A fault that fires for the original rid but not after a worker
    restart... is impossible with deterministic per-rid chaos, so instead
    prove the retry path end-to-end: rate low enough that some victims'
    retries land on a non-firing (site, rid) — here the same rid always
    re-fires, so assert the budgeted bound instead: attempts never exceed
    1 + max_retries."""
    chaos = ChaosSpec(sites=("pool.worker.abort",), rate=0.4, seed=9)
    with WorkerPool(chaos_cfg(chaos,
                              retry=RetryPolicy(max_retries=2,
                                                base_backoff_s=0.02))) \
            as pool:
        futs = {f"r{i}": pool.submit(SRC, "main", [i], request_id=f"r{i}")
                for i in range(12)}
        for rid, f in futs.items():
            e = f.exception(timeout=120)
            fired = chaos.fires("pool.worker.abort", rid)
            if not fired:
                assert e is None and f.result() is not None
        assert pool.stats.retries <= 2 * 12


def test_budgeted_requests_never_retry():
    """Retrying a budgeted request would charge its budget twice; crash
    victims carrying a budget must fail typed instead."""
    from repro.guard import Budget
    chaos = ChaosSpec(sites=("pool.worker.abort",), rate=1.0, seed=1)
    with WorkerPool(chaos_cfg(chaos,
                              retry=RetryPolicy(max_retries=3))) as pool:
        e = pool.submit(SRC, "main", [2],
                        budget=Budget(max_elements=10 ** 9),
                        request_id="bdg").exception(timeout=120)
        assert isinstance(e, WorkerCrashError)
        assert "bdg" in e.request_ids
        assert pool.stats.retries == 0


def test_chaos_spec_validation_and_parse():
    with pytest.raises(ValueError):
        ChaosSpec(sites=("pool.worker.nope",))
    with pytest.raises(ValueError):
        ChaosSpec(sites=("pool.worker.abort",), rate=1.5)
    spec = ChaosSpec.parse("abort,poison:rate=0.25:seed=7")
    assert spec.sites == ("pool.worker.abort",
                          "pool.worker.poisoned-response")
    assert spec.rate == 0.25 and spec.seed == 7
    assert ChaosSpec.parse("all").sites == tuple(PROCESS_FAULT_SITES)
    with pytest.raises(ValueError):
        ChaosSpec.parse("abort:rate=0.1:bogus=2")
    # determinism: the same (seed, site, rid) always answers the same
    a = ChaosSpec(sites=("pool.worker.abort",), rate=0.5, seed=42)
    b = ChaosSpec(sites=("pool.worker.abort",), rate=0.5, seed=42)
    picks = [a.fires("pool.worker.abort", f"q{i}") for i in range(64)]
    assert picks == [b.fires("pool.worker.abort", f"q{i}")
                     for i in range(64)]
    assert any(picks) and not all(picks)
