"""The ``repro serve`` JSONL protocol, driven in-process through
injectable streams (no subprocess needed)."""

import io
import json

from repro.cli import EXIT_CRASH, EXIT_ERROR, EXIT_OK, EXIT_USAGE, main, serve
from repro.errors import WorkerCrashError

SRC = "fun main(n) = [i <- [1..n]: i * i]"


def run_serve(requests, default_source=None, **kw):
    lines = "\n".join(json.dumps(r) if isinstance(r, dict) else r
                      for r in requests)
    out, err = io.StringIO(), io.StringIO()
    rc = serve(default_source=default_source,
               stdin=io.StringIO(lines + "\n"), stdout=out, stderr=err, **kw)
    responses = [json.loads(line) for line in out.getvalue().splitlines()]
    return rc, responses, err.getvalue()


class TestProtocol:
    def test_single_request(self):
        rc, resp, _ = run_serve(
            [{"id": 1, "source": SRC, "fname": "main", "args": [3]}])
        assert rc == EXIT_OK
        assert resp == [{"id": 1, "ok": True, "result": [1, 4, 9]}]

    def test_responses_in_request_order(self):
        reqs = [{"id": k, "source": SRC, "args": [k]} for k in range(1, 9)]
        rc, resp, _ = run_serve(reqs)
        assert rc == EXIT_OK
        assert [r["id"] for r in resp] == list(range(1, 9))
        assert resp[-1]["result"] == [k * k for k in range(1, 9)]

    def test_default_source_from_file_argument(self):
        rc, resp, _ = run_serve([{"id": 0, "args": [2]}], default_source=SRC)
        assert rc == EXIT_OK and resp[0]["result"] == [1, 4]

    def test_missing_source_is_a_request_error(self):
        rc, resp, _ = run_serve([{"id": 0, "args": [2]}])
        assert rc == EXIT_ERROR
        assert resp[0]["ok"] is False and resp[0]["kind"] == "error"
        assert "source" in resp[0]["error"]

    def test_bad_json_line_is_a_request_error(self):
        rc, resp, _ = run_serve(["{not json"])
        assert rc == EXIT_ERROR
        assert resp[0]["id"] is None and resp[0]["ok"] is False

    def test_blank_lines_ignored(self):
        rc, resp, _ = run_serve(
            ["", json.dumps({"id": 7, "source": SRC, "args": [1]}), "   "])
        assert rc == EXIT_OK and len(resp) == 1 and resp[0]["id"] == 7

    def test_per_request_backend_and_types(self):
        src = "fun main(s) = sum(s)"
        rc, resp, _ = run_serve(
            [{"id": 0, "source": src, "args": [[]],
              "types": ["seq(int)"], "backend": "interp"},
             {"id": 1, "source": src, "args": [[2, 3]],
              "types": ["seq(int)"], "backend": "vcode"}])
        assert rc == EXIT_OK
        assert [r["result"] for r in resp] == [0, 5]


class TestErrorKinds:
    def test_compile_error_kind(self):
        rc, resp, _ = run_serve(
            [{"id": 0, "source": "fun main( = broken", "args": []}])
        assert rc == EXIT_ERROR
        assert resp[0]["kind"] == "error"

    def test_resource_kind_and_isolation(self):
        """A budgeted request breaches alone; its neighbours succeed and
        the exit code still reports the failure."""
        reqs = [{"id": 0, "source": SRC, "args": [3]},
                {"id": 1, "source": SRC, "args": [500], "max_steps": 1},
                {"id": 2, "source": SRC, "args": [2]}]
        rc, resp, _ = run_serve(reqs)
        assert rc == EXIT_ERROR
        assert resp[0]["ok"] and resp[0]["result"] == [1, 4, 9]
        assert not resp[1]["ok"] and resp[1]["kind"] == "resource"
        assert resp[2]["ok"] and resp[2]["result"] == [1, 4]

    def test_deadline_expired_kind(self):
        rc, resp, _ = run_serve(
            [{"id": 0, "source": SRC, "args": [3], "deadline_s": -1}])
        assert rc == EXIT_ERROR
        assert resp[0]["kind"] == "resource"
        assert "timeout" in resp[0]["error"]


class TestStatsAndBatching:
    def test_stats_line_reports_batching_and_hit_rate(self):
        reqs = [{"id": k, "source": SRC, "args": [k + 1]} for k in range(20)]
        rc, resp, err = run_serve(reqs, stats=True)
        assert rc == EXIT_OK and len(resp) == 20
        assert "serve: 20 requests" in err
        assert "cache hit-rate" in err

    def test_tuple_results_render_as_json_arrays(self):
        src = "fun main(n) = (n, n + 1)"
        rc, resp, _ = run_serve([{"id": 0, "source": src, "args": [4]}])
        assert rc == EXIT_OK and resp[0]["result"] == [4, 5]

    def test_tuple_args_coerced_via_types(self):
        """JSON has no tuples; a declared tuple type turns the incoming
        list into one before it reaches the pipeline."""
        rc, resp, _ = run_serve(
            [{"id": 0, "source": "fun main(p) = p", "args": [[3, 4]],
              "types": ["(int, int)"]}])
        assert rc == EXIT_OK and resp[0]["result"] == [3, 4]


class TestPoolServe:
    """``--pool N``: the same JSONL protocol served by worker processes."""

    def test_pool_happy_path_and_stats_line(self):
        reqs = [{"id": k, "source": SRC, "args": [k + 1]} for k in range(8)]
        rc, resp, err = run_serve(reqs, pool=2, stats=True)
        assert rc == EXIT_OK
        assert [r["result"] for r in resp] == \
            [[i * i for i in range(1, k + 2)] for k in range(8)]
        assert "serve: 8 requests" in err
        assert "healthy" in err and "worker restarts" in err

    def test_pool_chaos_abort_is_crash_kind(self):
        # rate=1 with no retry: the worker dies on the request and the
        # client sees a typed crash, not a hung or dead server
        reqs = [{"id": "victim", "source": SRC, "args": [2]}]
        rc, resp, _ = run_serve(reqs, pool=2, retry=0,
                                chaos="abort:rate=1.0")
        assert rc == EXIT_ERROR
        assert resp[0]["ok"] is False and resp[0]["kind"] == "crash"
        assert "victim" in resp[0]["error"]

    def test_pool_resource_kind_passes_through(self):
        reqs = [{"id": 0, "source": SRC, "args": [500], "max_steps": 1},
                {"id": 1, "source": SRC, "args": [2]}]
        rc, resp, _ = run_serve(reqs, pool=2)
        assert not resp[0]["ok"] and resp[0]["kind"] == "resource"
        assert resp[1]["ok"] and resp[1]["result"] == [1, 4]

    def test_bad_chaos_spec_is_usage_error(self):
        rc, _, err = run_serve([], pool=2, chaos="no-such-site")
        assert rc == EXIT_USAGE and "chaos" in err

    def test_worker_crash_error_maps_to_exit_8(self, monkeypatch, capsys):
        def boom(ns):
            raise WorkerCrashError("exit", worker="w0",
                                   request_ids=("r1",))
        monkeypatch.setattr("repro.cli._dispatch", boom)
        assert main(["passes"]) == EXIT_CRASH
        assert "worker crash" in capsys.readouterr().err


class TestMainDispatch:
    def test_serve_subcommand_via_main(self, tmp_path, capsys, monkeypatch):
        f = tmp_path / "p.p"
        f.write_text(SRC)
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"id": 1, "args": [3]}) + "\n"))
        rc = main(["serve", str(f)])
        assert rc == EXIT_OK
        out = capsys.readouterr().out
        assert json.loads(out.splitlines()[-1])["result"] == [1, 4, 9]
