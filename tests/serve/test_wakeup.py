"""The BatchExecutor's idle dispatchers must be event-driven, not
polling: ``submit``/``close`` notify a condition, and ``poll_s`` is only
a fallback heartbeat.  This pins the fix for the idle busy-wait (the old
dispatcher woke every 50 ms forever)."""

import time

from repro.serve import BatchExecutor, ServeConfig

SRC = "fun main(x) = x + 1;"


def test_idle_executor_does_not_spin():
    # With poll_s=30 an idle dispatcher can only wake when notified; any
    # progress therefore proves event-driven wake-up, and the wakeup
    # counter proves the fallback heartbeat never fired.
    with BatchExecutor(ServeConfig(poll_s=30.0)) as ex:
        time.sleep(0.3)                      # idle window
        assert ex._idle_wakeups == 0
        t0 = time.monotonic()
        assert ex.submit(SRC, "main", [1]).result(timeout=5.0) == 2
        assert time.monotonic() - t0 < 5.0
    # close() must also wake the sleeping dispatchers (the context
    # manager above would hang on join otherwise)


def test_fallback_heartbeat_still_ticks():
    # belt check: a tiny poll_s still fires timeouts while idle, so a
    # lost notification could never wedge the executor forever
    with BatchExecutor(ServeConfig(poll_s=0.05)) as ex:
        time.sleep(0.4)
        assert ex._idle_wakeups >= 2


def test_close_wakes_idle_dispatchers_quickly():
    ex = BatchExecutor(ServeConfig(poll_s=60.0))
    time.sleep(0.1)
    t0 = time.monotonic()
    ex.close(timeout=10.0)
    assert time.monotonic() - t0 < 5.0       # not a poll_s-bounded close
