"""Deadlines, budgets, and backpressure at the serving layer.

The isolation properties: a budget breach fails its own request only
(budgeted requests never coalesce), a failing batch member never poisons
its batchmates (the group decomposes and re-runs individually), expired
requests fail without running, and a full queue sheds load with
``ResourceLimitError("queue-depth")`` instead of wedging.
"""

import threading

import pytest

from repro.api import compile_program
from repro.errors import ReproError, ResourceLimitError
from repro.guard import Budget
from repro.serve import BatchExecutor, CompileCache, ServeConfig

SRC = "fun main(n) = sum([i <- [1..n]: i * i])"


def expect(n):
    return sum(i * i for i in range(1, n + 1))


class TestBudgets:
    def test_budget_breach_fails_only_its_own_request(self):
        """A slow request under a tight step budget raises for that
        request alone; its (would-be) batchmates all succeed.  Admission
        is disabled, so this pins the *runtime* enforcement backstop
        (tests/serve/test_admission.py covers the predicted path)."""
        with BatchExecutor(ServeConfig(max_batch=16,
                                       predict_admission=False)) as ex:
            healthy = [ex.submit(SRC, "main", [k]) for k in range(1, 9)]
            doomed = ex.submit(SRC, "main", [500],
                               budget=Budget(max_steps=2))
            more = [ex.submit(SRC, "main", [k]) for k in range(9, 13)]
            with pytest.raises(ResourceLimitError) as ei:
                doomed.result(30)
            assert ei.value.limit == "steps"
            for k, fut in enumerate(healthy, start=1):
                assert fut.result(30) == expect(k)
            for k, fut in enumerate(more, start=9):
                assert fut.result(30) == expect(k)
            assert ex.stats.errors == 1

    def test_budgeted_requests_never_coalesce(self):
        """Each budgeted request runs alone, so a guard breach is
        attributable: no shared guard scope across requests."""
        with BatchExecutor(ServeConfig(max_batch=16)) as ex:
            futs = [ex.submit(SRC, "main", [3],
                              budget=Budget(max_steps=100_000))
                    for _ in range(6)]
            assert [f.result(30) for f in futs] == [expect(3)] * 6
            stats = ex.stats.snapshot()
            assert stats["batches"] == 0
            assert stats["singles"] == 6

    def test_queue_keeps_serving_after_a_breach(self):
        with BatchExecutor(ServeConfig(max_batch=8)) as ex:
            # over-budget: rejected at submit by predicted admission
            with pytest.raises(ResourceLimitError):
                ex.submit(SRC, "main", [500], budget=Budget(max_steps=2))
            assert ex.submit(SRC, "main", [4]).result(30) == expect(4)


class TestBatchPoisoning:
    def test_failing_member_does_not_poison_batchmates(self):
        """One request whose arguments crash the program: the batch
        decomposes, the bad request gets the error, the rest succeed."""
        src = "fun main(n) = 100 div n"
        with BatchExecutor(ServeConfig(max_batch=16)) as ex:
            futs = [ex.submit(src, "main", [n]) for n in (1, 2, 0, 5, 10)]
            ex.close()
        assert futs[0].result(0) == 100
        assert futs[1].result(0) == 50
        assert isinstance(futs[2].exception(0), ReproError)
        assert futs[3].result(0) == 20
        assert futs[4].result(0) == 10
        assert ex.stats.fallbacks >= 1     # the decomposition happened


class TestDeadlines:
    def test_expired_request_fails_without_running(self):
        with BatchExecutor(ServeConfig(max_batch=4)) as ex:
            fut = ex.submit(SRC, "main", [5], deadline_s=-0.001)
            with pytest.raises(ResourceLimitError) as ei:
                fut.result(30)
            assert ei.value.limit == "timeout"
            assert ei.value.stage == "serve:queue"
            assert ex.stats.expired == 1

    def test_expiry_does_not_wedge_the_queue(self):
        with BatchExecutor(ServeConfig(max_batch=4)) as ex:
            dead = [ex.submit(SRC, "main", [5], deadline_s=-0.001)
                    for _ in range(3)]
            live = ex.submit(SRC, "main", [6], deadline_s=60.0)
            for fut in dead:
                assert isinstance(fut.exception(30), ResourceLimitError)
            assert live.result(30) == expect(6)


class TestBackpressure:
    @staticmethod
    def _gated_executor(max_queue):
        """An executor whose single worker is wedged inside a compile
        until ``release`` is set — deterministic queue pressure."""
        entered = threading.Event()
        release = threading.Event()

        def compile_fn(source, use_prelude, options):
            entered.set()
            release.wait(30)
            return compile_program(source, use_prelude=use_prelude,
                                   options=options)

        ex = BatchExecutor(ServeConfig(max_queue=max_queue, workers=1),
                           cache=CompileCache(8, compile_fn=compile_fn))
        return ex, entered, release

    def test_full_queue_rejects_with_resource_error(self):
        ex, entered, release = self._gated_executor(max_queue=3)
        try:
            first = ex.submit(SRC, "main", [1])
            assert entered.wait(10)          # worker is now wedged
            held = [ex.submit(SRC, "main", [k]) for k in (2, 3, 4)]
            with pytest.raises(ResourceLimitError) as ei:
                ex.submit(SRC, "main", [5])
            assert ei.value.limit == "queue-depth"
            assert ei.value.stage == "serve:submit"
            assert ex.stats.rejected == 1
            # shed load, not wedged: releasing the gate drains everything
            release.set()
            assert first.result(30) == expect(1)
            assert [f.result(30) for f in held] == [expect(k)
                                                   for k in (2, 3, 4)]
        finally:
            release.set()
            ex.close()

    def test_queue_accepts_again_after_draining(self):
        ex, entered, release = self._gated_executor(max_queue=2)
        try:
            held = [ex.submit(SRC, "main", [1])]
            assert entered.wait(10)          # [1] is out of the queue now
            held += [ex.submit(SRC, "main", [k]) for k in (2, 3)]
            with pytest.raises(ResourceLimitError):
                ex.submit(SRC, "main", [4])
            release.set()
            for k, fut in enumerate(held, start=1):   # drain the queue
                assert fut.result(30) == expect(k)
            late = ex.submit(SRC, "main", [7])
            assert late.result(30) == expect(7)
        finally:
            release.set()
            ex.close()
