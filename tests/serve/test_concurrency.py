"""Concurrency stress: many client threads against one BatchExecutor.

The guarantees under fire: every submitted request gets exactly one
response, results are deterministic per request, identical sources
compile exactly once, and coalescing still happens under contention.
"""

import threading

from repro.api import compile_program
from repro.serve import BatchExecutor, CompileCache, ServeConfig

SRC = "fun main(n, s) = sum([x <- s: x * n]) + n"


def expected(n, s):
    return sum(x * n for x in s) + n


def counting_cache(capacity=32):
    lock = threading.Lock()
    calls = {"n": 0}

    def compile_fn(source, use_prelude, options):
        with lock:
            calls["n"] += 1
        return compile_program(source, use_prelude=use_prelude,
                               options=options)

    return CompileCache(capacity, compile_fn=compile_fn), calls


def hammer(n_threads, per_thread, **cfg):
    """``n_threads`` clients submit ``per_thread`` requests each; returns
    (results dict keyed by (tid, i), client errors, executor, compile
    count)."""
    cache, calls = counting_cache()
    results = {}
    errors = []
    rlock = threading.Lock()
    barrier = threading.Barrier(n_threads)

    with BatchExecutor(ServeConfig(**cfg), cache=cache) as ex:
        def client(tid):
            barrier.wait()
            futs = []
            for i in range(per_thread):
                n, s = tid + 1, list(range(i % 5))
                futs.append(((tid, i), n, s,
                             ex.submit(SRC, "main", [n, s],
                                       types=("int", "seq(int)"))))
            for key, n, s, fut in futs:
                try:
                    value = fut.result(30)
                except BaseException as e:
                    with rlock:
                        errors.append((key, e))
                    continue
                with rlock:
                    results[key] = (value, expected(n, s))

        threads = [threading.Thread(target=client, args=(tid,))
                   for tid in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(60)
        stats = ex.stats.snapshot()
    return results, errors, stats, calls["n"]


class TestStress:
    def test_eight_threads_no_lost_or_wrong_responses(self):
        n_threads, per_thread = 8, 25
        results, errors, stats, compiles = hammer(
            n_threads, per_thread, max_batch=16, workers=2)
        assert errors == []
        assert len(results) == n_threads * per_thread   # nothing lost
        for key, (got, want) in results.items():
            assert got == want, f"request {key}: {got!r} != {want!r}"
        # exactly one response per request at the stats level too
        assert stats["requests"] == n_threads * per_thread
        assert stats["responses"] == n_threads * per_thread
        assert stats["errors"] == 0

    def test_identical_source_compiles_once_under_contention(self):
        _results, errors, _stats, compiles = hammer(
            8, 10, max_batch=8, workers=4)
        assert errors == []
        assert compiles == 1

    def test_coalescing_happens_under_load(self):
        _results, errors, stats, _compiles = hammer(
            8, 20, max_batch=32, workers=1)
        assert errors == []
        assert stats["batches"] >= 1 and stats["max_batch"] >= 2
        # every request was served exactly once, by a batch or singly
        assert stats["batched_requests"] + stats["singles"] == 8 * 20

    def test_results_deterministic_across_repeats(self):
        """Same workload twice; per-request values must agree exactly."""
        r1, e1, _s1, _c1 = hammer(8, 8, max_batch=8, workers=2)
        r2, e2, _s2, _c2 = hammer(8, 8, max_batch=4, workers=3)
        assert e1 == [] and e2 == []
        assert {k: v[0] for k, v in r1.items()} == \
            {k: v[0] for k, v in r2.items()}

    def test_mixed_sources_from_many_threads(self):
        """4 distinct programs x 8 threads: one compile each, all correct."""
        cache, calls = counting_cache()
        sources = {k: f"fun main(n) = n * n + {k}" for k in range(4)}
        out = {}
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        with BatchExecutor(ServeConfig(max_batch=8, workers=2),
                           cache=cache) as ex:
            def client(tid):
                barrier.wait()
                futs = [(k, n, ex.submit(sources[k], "main", [n]))
                        for n in range(6) for k in sources]
                for k, n, fut in futs:
                    with lock:
                        out[(tid, k, n)] = fut.result(30)

            threads = [threading.Thread(target=client, args=(tid,))
                       for tid in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(60)

        assert calls["n"] == 4
        assert len(out) == 8 * 6 * 4
        for (tid, k, n), got in out.items():
            assert got == n * n + k


class TestLifecycle:
    def test_close_drains_pending_work(self):
        ex = BatchExecutor(ServeConfig(max_batch=4))
        futs = [ex.submit(SRC, "main", [k, [1, 2]]) for k in range(12)]
        ex.close()
        assert [f.result(0) for f in futs] == \
            [expected(k, [1, 2]) for k in range(12)]

    def test_submit_after_close_raises(self):
        ex = BatchExecutor()
        ex.close()
        try:
            ex.submit(SRC, "main", [1, []])
        except RuntimeError as e:
            assert "closed" in str(e)
        else:
            raise AssertionError("submit after close must raise")
