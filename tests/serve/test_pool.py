"""Functional battery for the supervised worker pool (repro.serve.pool)
without chaos: results identical to direct runs, cross-process error
marshalling, coalescing, budget isolation, deadline expiry, load
shedding, and the half-open breaker generalization of tier demotion.
Crash/fault behavior lives in test_pool_chaos.py and
tests/guard/test_process_faults.py."""

import time

import pytest

from repro import compile_program
from repro.errors import (
    EvalError, NativeCompileError, ParseError, ResourceLimitError,
)
from repro.guard import Budget
from repro.serve import BatchExecutor, PoolConfig, ServeConfig, WorkerPool
from repro.serve.cache import cache_key
from repro.serve.policy import HashRing

SRC = "fun main(x) = x * x + 1;"
NESTED = "fun main(n) = [i <- [1..n]: [j <- [1..i]: i * j]];"


def quick(**kw) -> PoolConfig:
    kw.setdefault("workers", 2)
    kw.setdefault("native_after", 0)
    return PoolConfig(**kw)


def test_results_match_direct_run():
    direct = compile_program(SRC)
    want = [direct.run("main", [k]) for k in range(12)]
    with WorkerPool(quick()) as pool:
        got = pool.run_many(SRC, "main", [[k] for k in range(12)])
    assert got == want


def test_nested_results_cross_process():
    want = compile_program(NESTED).run("main", [5])
    with WorkerPool(quick()) as pool:
        assert pool.submit(NESTED, "main", [5]).result(timeout=60) == want


def test_requests_coalesce_into_batches():
    with WorkerPool(quick()) as pool:
        futs = [pool.submit(SRC, "main", [k]) for k in range(16)]
        assert [f.result(timeout=60) for f in futs] == \
            [k * k + 1 for k in range(16)]
        s = pool.stats.snapshot()
    assert s["batched_requests"] + s["singles"] == 16
    assert s["batches"] >= 1 and s["max_batch"] >= 2
    assert s["responses"] == 16 and s["errors"] == 0


def test_error_classes_survive_the_process_boundary():
    with WorkerPool(quick()) as pool:
        # runtime error in the program
        e = pool.submit("fun main(v) = v[100];", "main",
                        [[1, 2, 3]]).exception(timeout=60)
        assert isinstance(e, EvalError)
        # compile-time error
        e = pool.submit("fun main(x) =", "main", [1]).exception(timeout=60)
        assert isinstance(e, ParseError)


def test_failing_request_never_poisons_batchmates():
    src = "fun main(v) = v[2] * 10;"
    with WorkerPool(quick(workers=1)) as pool:
        good = [pool.submit(src, "main", [[1, 2, 3]],
                            request_id=f"g{i}") for i in range(3)]
        bad = pool.submit(src, "main", [[1]], request_id="bad")
        assert [f.result(timeout=60) for f in good] == [20, 20, 20]
        assert isinstance(bad.exception(timeout=60), EvalError)


def test_budget_breach_is_per_request_and_named():
    src = "fun main(n) = sum([i <- [1..n]: i]);"
    with WorkerPool(quick()) as pool:
        tight = pool.submit(src, "main", [100000],
                            budget=Budget(max_elements=10),
                            request_id="tight")
        free = pool.submit(src, "main", [10], request_id="free")
        assert free.result(timeout=60) == 55
        e = tight.exception(timeout=60)
        assert isinstance(e, ResourceLimitError)
        assert e.limit == "elements" and e.request == "tight"


def test_already_expired_deadline_fails_in_queue():
    with WorkerPool(quick()) as pool:
        f = pool.submit(SRC, "main", [1], deadline_s=0.0, request_id="late")
        e = f.exception(timeout=60)
        assert isinstance(e, ResourceLimitError)
        assert e.limit == "timeout" and e.request == "late"
        assert pool.stats.expired >= 1


def test_quorum_shedding_and_recovery():
    with WorkerPool(quick(min_healthy=2,
                          respawn_backoff_s=0.5)) as pool:
        assert pool.healthy_workers() == 2
        pool.handles[0].proc.kill()
        deadline = time.monotonic() + 10
        while pool.healthy_workers() == 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert pool.healthy_workers() < 2
        with pytest.raises(ResourceLimitError) as ei:
            pool.submit(SRC, "main", [1], request_id="shed-me")
        assert ei.value.limit == "healthy-workers"
        assert "shed-me" in str(ei.value)
        assert pool.stats.shed >= 1
        # the supervisor respawns the worker; service resumes
        deadline = time.monotonic() + 20
        while pool.healthy_workers() < 2 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.healthy_workers() == 2
        assert pool.submit(SRC, "main", [3]).result(timeout=60) == 10
        assert pool.stats.restarts >= 1


def test_shard_affinity_is_stable():
    # the same batch key must always land on the same worker slot
    ring = HashRing(2)
    key = (cache_key(SRC, None, True), "main", None, "vector", False)
    assert ring.lookup(key) == ring.lookup(key)
    with WorkerPool(quick()) as pool:
        futs = [pool.submit(SRC, "main", [k]) for k in range(6)]
        [f.result(timeout=60) for f in futs]
        served = [h for h in pool.handles
                  if h.wid == ring.lookup(key)]
        assert len(served) == 1


def test_closed_pool_rejects_submissions():
    pool = WorkerPool(quick())
    pool.close()
    with pytest.raises(RuntimeError):
        pool.submit(SRC, "main", [1])
    pool.close()     # idempotent


def test_config_validation():
    with pytest.raises(ValueError):
        WorkerPool(PoolConfig(workers=0))
    with pytest.raises(ValueError):
        WorkerPool(PoolConfig(workers=2, min_healthy=3))


# -- the breaker generalization of PR 7's permanent demotion -------------

def test_batcher_breaker_half_open_reprobe(monkeypatch):
    """The thread executor's tier demotion is now a circuit breaker:
    K consecutive native failures open it, a cooldown admits one probe,
    and a successful probe restores the native tier."""
    from repro.api import CompiledProgram
    monkeypatch.setattr("repro.native.toolchain.available", lambda: True)
    orig = CompiledProgram.run
    calls = {"native": 0}

    def fake(self, fname, args, **kw):
        if kw.get("backend") == "native":
            calls["native"] += 1
            if calls["native"] <= 3:
                raise NativeCompileError("compile", "injected")
            kw = dict(kw, backend="vector")
        return orig(self, fname, args, **kw)

    monkeypatch.setattr(CompiledProgram, "run", fake)
    cfg = ServeConfig(native_after=1, breaker_failures=2,
                      breaker_cooldown_s=0.3)
    with BatchExecutor(cfg) as ex:
        for _ in range(5):
            assert ex.submit(SRC, "main", [2]).result(30) == 5
        # two native failures tripped the breaker; while open, no
        # further native attempts happen
        assert calls["native"] == 2
        assert ex.stats.demotions == 1
        time.sleep(0.35)
        # cooldown elapsed: one half-open probe (fails, re-opens)
        assert ex.submit(SRC, "main", [2]).result(30) == 5
        assert calls["native"] == 3
        assert ex.stats.demotions == 2
        time.sleep(0.65)                     # escalated cooldown
        # next probe succeeds and closes the breaker: native tier back
        assert ex.submit(SRC, "main", [2]).result(30) == 5
        n = calls["native"]
        assert n == 4
        assert ex.submit(SRC, "main", [2]).result(30) == 5
        assert calls["native"] == n + 1      # closed: native again
    assert ex.stats.errors == 0              # demotion never reached callers


def test_batcher_legacy_demotion_is_permanent(monkeypatch):
    """Default config keeps the PR-7 contract: first failure demotes
    forever (no re-probe)."""
    from repro.api import CompiledProgram
    monkeypatch.setattr("repro.native.toolchain.available", lambda: True)
    orig = CompiledProgram.run
    calls = {"native": 0}

    def fake(self, fname, args, **kw):
        if kw.get("backend") == "native":
            calls["native"] += 1
            raise NativeCompileError("compile", "injected")
        return orig(self, fname, args, **kw)

    monkeypatch.setattr(CompiledProgram, "run", fake)
    with BatchExecutor(ServeConfig(native_after=1)) as ex:
        for _ in range(4):
            assert ex.submit(SRC, "main", [2]).result(30) == 5
        time.sleep(0.2)
        assert ex.submit(SRC, "main", [2]).result(30) == 5
        assert calls["native"] == 1          # one failure, never again
        assert ex.stats.demotions == 1
