"""The batching equivalence battery (the serving layer's core promise).

For generated programs ``P`` and argument sets ``A_1..A_N``::

    run_batched(f, [A_1..A_N], backend) == [run(f, A_i, backend) for i]

element-wise, across all three back ends and under strict checking.
Programs come from the differential fuzzer's type-directed generator
(:mod:`repro.fuzz.gen`), so the battery sweeps iterators, filters,
scans, permutes, nested sequences, and helper calls — the same surface
the paper's transformation covers.
"""

import random

import pytest

from repro.api import compile_program
from repro.fuzz.gen import _gen_args, gen_case
from repro.serve import BatchExecutor, ServeConfig

N_PROGRAMS = 200          # generated programs exercised per backend
CHUNK = 20                # seeds per pytest case (keeps reporting granular)
ARGSETS = 4               # argument sets batched per program

_programs: dict[int, tuple] = {}


def program(seed):
    """Compile the seed's program once and share it across backends."""
    if seed not in _programs:
        case = gen_case(seed)
        argsets = [list(case.args)]
        rng = random.Random(seed * 7919 + 13)
        argsets += [list(_gen_args(rng)) for _ in range(ARGSETS - 1)]
        _programs[seed] = (compile_program(case.source), case, argsets)
    return _programs[seed]


def assert_batch_matches(seed, backend, check=False):
    prog, case, argsets = program(seed)
    expected = [prog.run(case.entry, a, backend, case.types, check=check)
                for a in argsets]
    got = prog.run_batched(case.entry, argsets, backend, case.types,
                           check=check)
    assert got == expected, (
        f"seed {seed} backend {backend} check={check}: batched run "
        f"diverged from {len(argsets)} independent runs\n{case.source}")


_CHUNKS = [range(lo, lo + CHUNK) for lo in range(0, N_PROGRAMS, CHUNK)]


@pytest.mark.parametrize("seeds", _CHUNKS,
                         ids=[f"{c.start}-{c.stop - 1}" for c in _CHUNKS])
class TestBackends:
    def test_vector(self, seeds):
        for seed in seeds:
            assert_batch_matches(seed, "vector")

    def test_vcode(self, seeds):
        for seed in seeds:
            assert_batch_matches(seed, "vcode")

    def test_interp(self, seeds):
        for seed in seeds:
            assert_batch_matches(seed, "interp")


@pytest.mark.parametrize("seeds", _CHUNKS[:3],
                         ids=[f"{c.start}-{c.stop - 1}" for c in _CHUNKS[:3]])
def test_strict_checking(seeds):
    """A slice of the battery re-run under check=True: the descriptor
    invariant holds at every kernel and at the pack/unpack boundary."""
    for seed in seeds:
        assert_batch_matches(seed, "vector", check=True)


def test_executor_end_to_end_matches_independent_runs():
    """The full serving path (queue -> coalesce -> pack -> f^1 -> unpack)
    returns exactly what N independent run() calls return — and really
    does batch (not a per-request loop in disguise)."""
    seed = 5
    prog, case, _ = program(seed)
    rng = random.Random(424242)
    argsets = [list(case.args)] + [list(_gen_args(rng)) for _ in range(15)]
    expected = [prog.run(case.entry, a, "vector", case.types)
                for a in argsets]
    with BatchExecutor(ServeConfig(max_batch=16)) as ex:
        got = ex.run_many(case.source, case.entry, argsets, types=case.types)
        stats = ex.stats.snapshot()
    assert got == expected
    assert stats["batched_requests"] >= 8      # coalescing actually happened
    assert stats["max_batch"] >= 8


def test_executor_varied_batch_sizes():
    seed = 11
    prog, case, _ = program(seed)
    rng = random.Random(31337)
    with BatchExecutor(ServeConfig(max_batch=8)) as ex:
        for n in (1, 2, 8):
            argsets = [list(_gen_args(rng)) for _ in range(n)]
            expected = [prog.run(case.entry, a, "vector", case.types)
                        for a in argsets]
            assert ex.run_many(case.source, case.entry, argsets,
                               types=case.types) == expected
