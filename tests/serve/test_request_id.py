"""Budget/deadline/backpressure errors escaping the serving layer must
name the originating request, even when the request travelled through a
coalesced batch (acceptance criterion of the analysis PR)."""

import pytest

from repro.errors import ResourceLimitError
from repro.guard.runtime import Budget
from repro.serve.batcher import BatchExecutor, ServeConfig

SRC = "fun main(n) = sum([i <- [1..n]: i * i])"


def test_budget_breach_names_the_request():
    # predicted admission rejects at submit time; the error still names
    # the request
    with BatchExecutor() as ex:
        try:
            fut = ex.submit(SRC, "main", [200], budget=Budget(max_steps=1),
                            request_id="req-alpha")
        except ResourceLimitError as e:
            err: BaseException = e
        else:
            err = fut.exception()
    assert isinstance(err, ResourceLimitError)
    assert err.request == "req-alpha"
    assert "[request req-alpha]" in str(err)


def test_runtime_budget_breach_names_the_request():
    # with admission off, the runtime guard's breach also names it
    with BatchExecutor(ServeConfig(predict_admission=False)) as ex:
        fut = ex.submit(SRC, "main", [200], budget=Budget(max_steps=1),
                        request_id="req-alpha")
        err = fut.exception()
    assert isinstance(err, ResourceLimitError)
    assert err.request == "req-alpha"
    assert "[request req-alpha]" in str(err)


def test_breach_in_decomposed_batch_lands_on_the_right_request():
    """Budgeted requests run alone; their breach never names a batchmate."""
    with BatchExecutor(ServeConfig(max_batch=8,
                                   predict_admission=False)) as ex:
        futs = [ex.submit(SRC, "main", [10], request_id=f"ok-{k}")
                for k in range(4)]
        bad = ex.submit(SRC, "main", [200], budget=Budget(max_steps=1),
                        request_id="req-bad")
        for f in futs:
            assert f.result(timeout=30) == sum(i * i for i in range(1, 11))
        err = bad.exception(timeout=30)
    assert isinstance(err, ResourceLimitError)
    assert err.request == "req-bad"


def test_request_id_is_auto_assigned():
    with BatchExecutor() as ex:
        with pytest.raises(ResourceLimitError) as ei:
            ex.submit(SRC, "main", [50], budget=Budget(max_steps=1))
    assert ei.value.request  # auto id, e.g. "r1"
    assert f"[request {ei.value.request}]" in str(ei.value)


def test_deadline_expiry_names_the_request():
    ex = BatchExecutor(ServeConfig(workers=1))
    try:
        # stall the single worker so the next request expires in queue
        ex.submit(SRC, "main", [3000], request_id="slow")
        fut = ex.submit(SRC, "main", [1], deadline_s=0.0,
                        request_id="req-late")
        err = fut.exception(timeout=30)
    finally:
        ex.close()
    assert isinstance(err, ResourceLimitError)
    assert err.limit == "timeout"
    assert err.request == "req-late"


def test_queue_rejection_names_the_request():
    ex = BatchExecutor(ServeConfig(max_queue=1, workers=1))
    try:
        with pytest.raises(ResourceLimitError) as ei:
            for k in range(200):  # outruns the single worker
                ex.submit(SRC, "main", [3000], request_id=f"req-{k}")
    finally:
        ex.close()
    assert ei.value.limit == "queue-depth"
    assert ei.value.request.startswith("req-")


def test_success_path_untouched():
    with BatchExecutor() as ex:
        assert ex.submit(SRC, "main", [4], request_id="fine").result(
            timeout=30) == 30
