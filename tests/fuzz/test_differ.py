"""The differential runner and the greedy shrinker."""

import pytest

from repro.fuzz import differ
from repro.fuzz.differ import (
    Outcome, compare_outcomes, fuzz, run_case, shrink_case,
)
from repro.fuzz.gen import INT, SEQ, FuzzCase, Node, gen_case, leaf


class TestCompare:
    def test_equal_values_agree(self):
        o = {b: Outcome(value=[1, 2]) for b in differ.BACKENDS}
        assert compare_outcomes(o)

    def test_differing_values_disagree(self):
        o = {"interp": Outcome(value=1), "vector": Outcome(value=2),
             "vcode": Outcome(value=1)}
        assert not compare_outcomes(o)

    def test_same_error_class_agrees(self):
        o = {b: Outcome(error_type="EvalError", error=f"msg {b}")
             for b in differ.BACKENDS}
        assert compare_outcomes(o)

    def test_mixed_success_failure_disagrees(self):
        o = {"interp": Outcome(value=1),
             "vector": Outcome(error_type="EvalError", error="x"),
             "vcode": Outcome(value=1)}
        assert not compare_outcomes(o)


class TestRunCase:
    def test_healthy_case_agrees(self):
        outcomes = run_case(gen_case(3))
        assert set(outcomes) == set(differ.BACKENDS)
        assert compare_outcomes(outcomes)

    def test_checked_run_agrees_too(self):
        assert compare_outcomes(run_case(gen_case(5), check=True))


class TestFuzzSmoke:
    def test_thirty_seeds_all_agree(self):
        report = fuzz(0, 30)
        assert report.count == 30
        assert report.agreed == 30
        assert report.ok
        assert "30 programs" in report.summary()

    def test_progress_callback_called(self):
        calls = []
        fuzz(0, 3, progress=lambda i, r: calls.append(i))
        assert calls == [0, 1, 2]


class TestShrinker:
    """Shrinking against a synthetic oracle: the 'bug' is any program
    whose main body mentions sum(."""

    @pytest.fixture()
    def fake_backends(self, monkeypatch):
        def fake_run_case(case, check=False, budget=None,
                          backends=differ.BACKENDS, pool=None):
            buggy = "sum(" in case.body.render()
            v = {b: Outcome(value=1) for b in differ.BACKENDS}
            if buggy:
                v["vector"] = Outcome(value=2)
            return v
        monkeypatch.setattr(differ, "run_case", fake_run_case)

    def test_shrinks_to_minimal_trigger(self, fake_backends):
        big = Node(INT, "(({0}) + ({1}))", (
            Node(INT, "sum({0})", (leaf(SEQ, "s"),)),
            Node(INT, "(({0}) * ({1}))", (leaf(INT, "a"), leaf(INT, "b")))))
        case = FuzzCase(seed=0, body=big, helpers=(),
                        args=(5, 7, [1, 2], [3], [[1]]))
        small, outcomes = shrink_case(case)
        assert "sum(" in small.body.render()
        assert small.body.size() <= 2          # sum(s) and nothing else
        assert not compare_outcomes(outcomes)

    def test_shrinks_arguments(self, fake_backends):
        case = FuzzCase(seed=0, body=Node(INT, "sum({0})", (leaf(SEQ, "s"),)),
                        helpers=(), args=(5, 7, [1, 2, 3], [4, 5], [[1], [2]]))
        small, _ = shrink_case(case)
        assert small.args[0] == 0              # ints zeroed
        assert small.args[2] == []             # seqs emptied

    def test_agreeing_case_returned_unchanged(self):
        case = gen_case(1)
        same, outcomes = shrink_case(case)
        assert same is case
        assert compare_outcomes(outcomes)

    def test_fuzz_reports_shrunk_disagreement(self, fake_backends):
        # patch the generator output too: one seeded buggy case
        big = Node(INT, "(({0}) - ({1}))", (
            Node(INT, "sum({0})", (leaf(SEQ, "t"),)), leaf(INT, "9")))
        buggy_case = FuzzCase(seed=99, body=big, helpers=(),
                              args=(0, 0, [], [], []))
        report = differ.FuzzReport()
        d = differ.Disagreement(case=buggy_case,
                                outcomes=differ.run_case(buggy_case))
        d.shrunk, d.outcomes = shrink_case(buggy_case)
        report.disagreements.append(d)
        text = d.describe()
        assert "disagree" in text
        assert "sum(" in text
        assert not report.ok
