"""The fuzzer's program generator: deterministic, valid, total."""

import pytest

from repro.api import compile_program
from repro.fuzz.gen import (
    ATOMS, PARAMS, FuzzCase, Node, gen_case, leaf, replace_at, subnodes,
)

SEEDS = range(0, 40)


class TestDeterminism:
    def test_same_seed_same_case(self):
        a, b = gen_case(42), gen_case(42)
        assert a.source == b.source
        assert a.args == b.args

    def test_different_seeds_differ(self):
        sources = {gen_case(s).source for s in SEEDS}
        assert len(sources) > len(SEEDS) // 2  # overwhelmingly distinct


class TestValidity:
    """Every generated program compiles and runs to completion on the
    reference interpreter — the generator's totality-by-construction
    claim."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_compiles_and_runs(self, seed):
        case = gen_case(seed)
        prog = compile_program(case.source)
        prog.run(case.entry, list(case.args), backend="interp",
                 types=list(case.types))

    def test_atoms_cover_every_type(self):
        for _name, t in PARAMS:
            assert t in ATOMS


class TestNodeTree:
    def test_render_roundtrip(self):
        n = Node("int", "(({0}) + ({1}))", (leaf("int", "1"), leaf("int", "a")))
        assert n.render() == "((1) + (a))"
        assert n.size() == 3

    def test_replace_at(self):
        n = Node("int", "(({0}) + ({1}))", (leaf("int", "1"), leaf("int", "a")))
        m = replace_at(n, (1,), leaf("int", "9"))
        assert m.render() == "((1) + (9))"
        assert n.render() == "((1) + (a))"  # original untouched

    def test_subnodes_enumerates_all(self):
        n = Node("int", "(({0}) + ({1}))", (leaf("int", "1"), leaf("int", "a")))
        paths = {p for p, _ in subnodes(n)}
        assert paths == {(), (0,), (1,)}

    def test_case_source_contains_main(self):
        case = gen_case(0)
        assert isinstance(case, FuzzCase)
        assert "fun main(" in case.source
