"""Tests for op classification and the communication-aware machine."""

import pytest

from repro import compile_program
from repro.machine.opclasses import (
    DEFAULT_FACTORS, ClassMix, CommMachine, classify, classify_trace, top_ops,
)
from repro.machine.simulator import VectorMachine


class TestClassify:
    @pytest.mark.parametrize("op,cls", [
        ("add", "elementwise"), ("not_", "elementwise"),
        ("sqrt_", "elementwise"), ("__rep", "elementwise"),
        ("sum", "scan_reduce"), ("plus_scan", "scan_reduce"),
        ("rank", "scan_reduce"), ("any", "scan_reduce"),
        ("seq_index", "gather_scatter"), ("permute", "gather_scatter"),
        ("combine", "gather_scatter"), ("apply_frame", "gather_scatter"),
        ("dist", "replicate"), ("replicate", "replicate"),
        ("length", "structure"), ("flatten", "structure"),
        ("range1", "structure"),
    ])
    def test_known_ops(self, op, cls):
        assert classify(op) == cls

    def test_unknown_is_conservative(self):
        assert classify("mystery_op") == "gather_scatter"

    def test_every_kernel_classified(self):
        from repro.vector.ops import KERNELS
        for name in KERNELS:
            assert classify(name) in DEFAULT_FACTORS


class TestClassifyTrace:
    TRACE = [("add", 100), ("sum", 100), ("seq_index", 50), ("add", 10)]

    def test_mix(self):
        mix = classify_trace(self.TRACE)
        assert mix.steps["elementwise"] == 2
        assert mix.work["elementwise"] == 110
        assert mix.work["scan_reduce"] == 100
        assert mix.total_work == 260

    def test_fractions_sum_to_one(self):
        mix = classify_trace(self.TRACE)
        assert sum(mix.work_fraction(c) for c in mix.work) == pytest.approx(1.0)

    def test_str(self):
        assert "elementwise" in str(classify_trace(self.TRACE))

    def test_empty_trace(self):
        mix = classify_trace([])
        assert mix.total_work == 0 and mix.work_fraction("elementwise") == 0.0


class TestCommMachine:
    def test_unit_factors_match_basic_machine(self):
        trace = [("add", 100), ("seq_index", 64), ("sum", 7)]
        basic = VectorMachine(processors=8, latency=2).run_trace(trace)
        comm = CommMachine(processors=8, latency=2,
                           factors={k: 1.0 for k in DEFAULT_FACTORS})
        assert comm.run_trace(trace).cycles == basic.cycles

    def test_gather_costs_more(self):
        m = CommMachine(processors=8, latency=0)
        ew = m.run_trace([("add", 800)])
        gs = m.run_trace([("seq_index", 800)])
        assert gs.cycles == 4 * ew.cycles

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            CommMachine(processors=0).run_trace([])


class TestTopOps:
    def test_ranking(self):
        trace = [("add", 10), ("mul", 500), ("add", 20), ("sum", 100)]
        ranked = top_ops(trace, k=2)
        assert ranked[0] == ("mul", 1, 500)
        assert ranked[1] == ("sum", 1, 100)

    def test_k_bounds(self):
        assert top_ops([("a", 1)], k=10) == [("a", 1, 1)]


class TestOnRealPrograms:
    def test_gather_heavy_program(self):
        prog = compile_program("fun gather(v, ix) = [i <- ix: v[i]]")
        v = list(range(100))
        _r, trace = prog.vector_trace("gather", [v, [1] * 100])
        mix = classify_trace(trace)
        assert mix.work_fraction("gather_scatter") > 0.3

    def test_elementwise_heavy_program(self):
        # constant-free body: no replicate ops for broadcast literals
        prog = compile_program(
            "fun f(v) = [x <- v: (x * x + x) * (x - x * x)]")
        _r, trace = prog.vector_trace("f", [list(range(500))])
        mix = classify_trace(trace)
        assert mix.work_fraction("elementwise") > 0.6

    def test_comm_machine_penalizes_gather_program_more(self):
        gather = compile_program("fun f(v, ix) = [i <- ix: v[i]]")
        ew = compile_program("fun f(v, w) = [x <- v: x * 2 + 1]")
        n = 2000
        _r, tg = gather.vector_trace("f", [list(range(n)), [1] * n])
        _r, te = ew.vector_trace("f", [list(range(n)), [0]])
        m_basic = VectorMachine(processors=16, latency=2)
        m_comm = CommMachine(processors=16, latency=2)
        slowdown_g = m_comm.run_trace(tg).cycles / m_basic.run_trace(tg).cycles
        slowdown_e = m_comm.run_trace(te).cycles / m_basic.run_trace(te).cycles
        assert slowdown_g > slowdown_e
