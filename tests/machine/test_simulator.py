"""Tests for the P-processor cycle model and load-balance metrics."""

import pytest

from repro import compile_program
from repro.machine.metrics import (
    block_makespan, greedy_makespan, speedup_curve, utilization,
)
from repro.machine.simulator import MachineReport, VectorMachine, sweep_processors


class TestVectorMachine:
    def test_single_op(self):
        m = VectorMachine(processors=4, latency=2)
        r = m.run_trace([("add", 100)])
        assert r.cycles == 2 + 25
        assert r.steps == 1 and r.work == 100

    def test_ceil_division(self):
        m = VectorMachine(processors=8, latency=0)
        assert m.run_trace([("add", 9)]).cycles == 2  # ceil(9/8)

    def test_empty_op_costs_latency(self):
        m = VectorMachine(processors=8, latency=3)
        assert m.run_trace([("add", 0)]).cycles == 3

    def test_serial_baseline(self):
        m1 = VectorMachine(processors=1, latency=2)
        r = m1.run_trace([("add", 100), ("mul", 50)])
        assert r.cycles == 2 + 100 + 2 + 50

    def test_speedup_at_scale(self):
        trace = [("add", 10_000)] * 10
        r = VectorMachine(processors=100, latency=1).run_trace(trace)
        assert r.speedup_vs_serial > 90

    def test_latency_bounds_speedup_on_tiny_vectors(self):
        trace = [("add", 1)] * 100
        r = VectorMachine(processors=64, latency=4).run_trace(trace)
        assert r.speedup_vs_serial < 2  # dominated by per-op latency

    def test_utilization_perfect_when_divisible(self):
        r = VectorMachine(processors=10, latency=0).run_trace([("add", 1000)])
        assert r.utilization == pytest.approx(1.0)

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            VectorMachine(processors=0).run_trace([])

    def test_sweep(self):
        trace = [("add", 1024)] * 4
        reports = sweep_processors(trace, [1, 2, 4, 8], latency=0)
        cyc = [r.cycles for r in reports]
        assert cyc == [4096, 2048, 1024, 512]

    def test_report_str(self):
        r = MachineReport(processors=2, latency=1, cycles=10, steps=2, work=16)
        assert "P=2" in str(r)


class TestTaskModelMetrics:
    def test_block_even(self):
        assert block_makespan([1, 1, 1, 1], 2) == 2

    def test_block_skewed(self):
        # one huge task dominates regardless of block boundaries
        assert block_makespan([100, 1, 1, 1], 4) == 100

    def test_greedy_beats_block_on_skew(self):
        work = [8, 7, 6, 5, 4, 3, 2, 1]
        assert greedy_makespan(work, 2) <= block_makespan(work, 2)

    def test_greedy_lower_bound_is_max_task(self):
        work = [50, 1, 1, 1]
        assert greedy_makespan(work, 4) == 50

    def test_empty_tasks(self):
        assert block_makespan([], 4) == 0
        assert greedy_makespan([], 4) == 0

    def test_utilization(self):
        assert utilization([10, 10], 2, 10) == pytest.approx(1.0)
        assert utilization([20, 0], 2, 20) == pytest.approx(0.5)

    def test_speedup_curve_saturates_at_max_task(self):
        # total work 100, biggest task 50: task-model speedup <= 2 forever
        work = [50] + [1] * 50
        curve = speedup_curve(work, [1, 4, 16, 64])
        assert curve[-1][1] <= 2.01

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            block_makespan([1], 0)
        with pytest.raises(ValueError):
            greedy_makespan([1], 0)


class TestEndToEndLoadBalance:
    """The paper's core claim in miniature: flattened execution of an
    irregular nested computation stays balanced; task-per-element does not."""

    SRC = """
        fun work(n) = sum([i <- [1..n]: i * i])
        fun all(v) = [n <- v: work(n)]
    """

    def test_flattened_utilization_beats_task_model(self):
        # one giant element among many tiny ones
        sizes = [1000] + [10] * 99
        prog = compile_program(self.SRC)
        _res, trace = prog.vector_trace("all", [sizes])
        P = 16
        flat = VectorMachine(processors=P, latency=2).run_trace(trace)

        # task model: per-element work measured by the reference interpreter
        per_elem = []
        for n in sizes:
            _v, cost = prog.measure("work", [n])
            per_elem.append(cost.work)
        task_ms = greedy_makespan(per_elem, P)
        task_util = utilization(per_elem, P, task_ms)

        assert flat.utilization > task_util

    def test_flattened_speedup_scales_on_skewed_input(self):
        sizes = [2000] + [5] * 49
        prog = compile_program(self.SRC)
        _res, trace = prog.vector_trace("all", [sizes])
        r1 = VectorMachine(processors=1, latency=1).run_trace(trace)
        r16 = VectorMachine(processors=16, latency=1).run_trace(trace)
        assert r1.cycles / r16.cycles > 4
