"""Tests for the ASCII chart helpers and measure_vector."""

import pytest

from repro import compile_program
from repro.machine.chart import hbar_chart, line_chart


class TestHBar:
    def test_basic(self):
        out = hbar_chart(["a", "bb"], [1, 2], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10     # max value fills the width
        assert lines[0].count("#") == 5

    def test_unit_suffix(self):
        out = hbar_chart(["x"], [3.5], unit="ms")
        assert "3.5ms" in out

    def test_empty(self):
        assert hbar_chart([], []) == "(empty chart)"

    def test_mismatch(self):
        with pytest.raises(ValueError):
            hbar_chart(["a"], [1, 2])

    def test_zero_values(self):
        out = hbar_chart(["a"], [0.0])
        assert "#" not in out


class TestLineChart:
    def test_corners_marked(self):
        out = line_chart([1, 2, 3, 4], [1, 2, 3, 4], height=4, width=8)
        rows = [l for l in out.splitlines() if "|" in l]
        assert rows[0].rstrip().endswith("*")    # top-right
        assert "*" in rows[-1].split("|")[1][:2]  # bottom-left

    def test_flat_series(self):
        out = line_chart([1, 2], [5, 5])
        assert out.count("*") == 2

    def test_labels(self):
        out = line_chart([0, 10], [0, 1], xlabel="P", ylabel="speedup")
        assert "speedup" in out and "P" in out

    def test_empty(self):
        assert line_chart([], []) == "(empty chart)"

    def test_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1], [1, 2])


class TestMeasureVector:
    def test_counts_ops_and_elements(self):
        prog = compile_program("fun f(n) = sum([i <- [1..n]: i * i])")
        val, cost = prog.measure_vector("f", [100])
        assert val == sum(i * i for i in range(1, 101))
        assert cost.span >= 3            # range1, mul, sum at least
        assert cost.work >= 300

    def test_flat_span_vs_interp_span(self):
        # the vector-model span (#ops) must not grow with n for flat code,
        # mirroring the interpreter's parallel span
        prog = compile_program("fun f(n) = [i <- [1..n]: i + 1]")
        _v, small = prog.measure_vector("f", [10])
        _v, big = prog.measure_vector("f", [10_000])
        assert small.span == big.span
        assert big.work > 100 * small.work

    def test_concurrency_property(self):
        prog = compile_program("fun f(n) = [i <- [1..n]: i * i]")
        _v, c = prog.measure_vector("f", [1000])
        assert c.concurrency > 100
