"""The public surface: package exports, version, and the documented
import paths all resolve and work."""


class TestTopLevelExports:
    def test_all_names_importable(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro
        assert repro.__version__.count(".") == 2

    def test_doctest_example(self):
        from repro import run
        assert run("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [5]) == \
            [1, 4, 9, 16, 25]


class TestVectorExports:
    def test_all_names(self):
        import repro.vector as V
        for name in V.__all__:
            assert hasattr(V, name), name

    def test_show(self):
        from repro.lang.types import INT, seq_of
        from repro.vector import from_python, show
        s = show(from_python([[1], [2, 3]], seq_of(INT, 2)))
        assert "descriptor V1" in s

    def test_save_load(self, tmp_path):
        from repro.lang.types import INT, TSeq
        from repro.vector import from_python, load_value, save_value, to_python
        f = str(tmp_path / "v.npz")
        save_value(f, from_python([1, 2], TSeq(INT)), TSeq(INT))
        v, t = load_value(f)
        assert to_python(v, t) == [1, 2]


class TestMachineExports:
    def test_all_names(self):
        import repro.machine as M
        for name in M.__all__:
            assert hasattr(M, name), name


class TestDocumentedEntryPoints:
    def test_readme_quickstart_snippet(self):
        from repro import compile_program
        prog = compile_program("""
            fun sqs(n) = [j <- [1..n]: j * j]
            fun main(k) = [i <- [1..k]: sqs(i)]
        """)
        assert prog.run("main", [5])[4] == [1, 4, 9, 16, 25]
        assert "sqs^1" in prog.transformed_source("main", [5])
        assert "cvl" in prog.emit_c("main", ["int"])

    def test_transform_options_fields(self):
        from repro import TransformOptions
        o = TransformOptions()
        for field in ("shared_seq_index", "reduce_to_native", "simplify",
                      "fuse", "trace"):
            assert hasattr(o, field)
