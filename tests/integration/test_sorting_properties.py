"""Property-based tests for the rank/permute primitives and the sorting
functions built on them — on both back ends."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_program

ints = st.integers(min_value=-1000, max_value=1000)
int_lists = st.lists(ints, max_size=25)

_PROG = compile_program("""
    fun ranks(v) = rank(v)
    fun perm(v, i) = permute(v, i)
    fun sort2(v) = sort(v)
    fun msort2(v) = msort(v)
    fun unique2(v) = unique(v)
    fun sortby(k, v) = sort_by(k, v)
""")

_SETTINGS = dict(max_examples=30, deadline=None,
                 suppress_health_check=list(HealthCheck))


class TestRankLaws:
    @settings(**_SETTINGS)
    @given(int_lists)
    def test_rank_is_a_permutation(self, v):
        r = _PROG.run("ranks", [v])
        assert sorted(r) == list(range(1, len(v) + 1))

    @settings(**_SETTINGS)
    @given(int_lists)
    def test_rank_orders_values(self, v):
        r = _PROG.run("ranks", [v])
        placed = [None] * len(v)
        for x, pos in zip(v, r):
            placed[pos - 1] = x
        assert placed == sorted(v)

    @settings(**_SETTINGS)
    @given(int_lists)
    def test_rank_stability(self, v):
        r = _PROG.run("ranks", [v])
        # equal values keep input order: their ranks are increasing
        from collections import defaultdict
        byval = defaultdict(list)
        for x, pos in zip(v, r):
            byval[x].append(pos)
        for positions in byval.values():
            assert positions == sorted(positions)

    @settings(**_SETTINGS)
    @given(int_lists)
    def test_rank_backend_agreement(self, v):
        assert _PROG.run("ranks", [v]) == \
            _PROG.run("ranks", [v], backend="interp")


class TestPermuteLaws:
    @settings(**_SETTINGS)
    @given(int_lists, st.randoms(use_true_random=False))
    def test_permute_inverse(self, v, rnd):
        idx = list(range(1, len(v) + 1))
        rnd.shuffle(idx)
        out = _PROG.run("perm", [v, idx])
        # element k landed at idx[k]
        for x, i in zip(v, idx):
            assert out[i - 1] == x

    @settings(**_SETTINGS)
    @given(int_lists)
    def test_sort_is_permute_of_rank(self, v):
        assert _PROG.run("sort2", [v]) == sorted(v)


class TestDerivedSorts:
    @settings(**_SETTINGS)
    @given(int_lists)
    def test_msort_equals_sort(self, v):
        assert _PROG.run("msort2", [v]) == sorted(v)

    @settings(**_SETTINGS)
    @given(int_lists)
    def test_unique(self, v):
        assert _PROG.run("unique2", [v]) == sorted(set(v))

    @settings(**_SETTINGS)
    @given(st.lists(st.tuples(ints, ints), max_size=20))
    def test_sort_by_matches_stable_python_sort(self, pairs):
        keys = [k for k, _ in pairs]
        vals = [x for _, x in pairs]
        got = _PROG.run("sortby", [keys, vals])
        want = [x for _k, x in sorted(zip(keys, vals), key=lambda p: p[0])]
        assert got == want

    @settings(max_examples=15, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(st.lists(int_lists, max_size=6))
    def test_sort_inside_frames(self, vv):
        p = compile_program("fun f(vv) = [v <- vv: sort(v)]")
        assert p.run("f", [vv], types=["seq(seq(int))"]) == \
            [sorted(v) for v in vv]
