"""Tests for the REPL (driven through injected stdin/stdout) and the
Table-2 update syntax."""

import io

import pytest

from repro import compile_program
from repro.cli import repl


def run_repl(script: str, backend: str = "vector") -> str:
    out = io.StringIO()
    rc = repl(backend=backend, stdin=io.StringIO(script), stdout=out)
    assert rc == 0
    return out.getvalue()


class TestRepl:
    def test_eval_expression(self):
        out = run_repl("1 + 2\n:quit\n")
        assert "3" in out

    def test_definition_then_use(self):
        out = run_repl("fun d(x) = 2 * x\nd(21)\n:quit\n")
        assert "ok" in out and "42" in out

    def test_prelude_available(self):
        out = run_repl("sort([3, 1, 2])\n:quit\n")
        assert "[1, 2, 3]" in out

    def test_defs_listing(self):
        out = run_repl("fun d(x) = x\n:defs\n:quit\n")
        assert "fun d(x) = x" in out

    def test_transform_command(self):
        out = run_repl("fun s(n) = [i <- [1..n]: i*i]\n:transform s\n:quit\n")
        assert "range1" in out and "mul^1" in out

    def test_backend_switch(self):
        out = run_repl(":backend interp\n7 * 6\n:quit\n")
        assert "back end: interp" in out and "42" in out

    def test_bad_backend(self):
        out = run_repl(":backend gpu\n:quit\n")
        assert "unknown back end" in out

    def test_error_recovery(self):
        out = run_repl("nosuchvar\n1 + 1\n:quit\n")
        assert "error" in out and "2" in out

    def test_bad_definition_rejected_and_not_kept(self):
        out = run_repl("fun bad(x) = y\nfun good(x) = x\ngood(5)\n:quit\n")
        assert "error" in out and "5" in out

    def test_eof_exits(self):
        assert run_repl("1 + 1\n")  # no :quit — EOF ends cleanly

    def test_help(self):
        out = run_repl(":help\n:quit\n")
        assert ":transform" in out

    def test_unknown_transform_target(self):
        out = run_repl(":transform nosuch\n:quit\n")
        assert "no such function" in out


class TestUpdateSyntax:
    def test_shallow(self):
        p = compile_program("fun f(v) = (v; [2]: 99)")
        assert p.run_all("f", [[1, 2, 3]]) == [1, 99, 3]

    def test_deep_two_levels(self):
        p = compile_program("fun f(m: seq(seq(int))) = (m; [1][2]: 99)")
        assert p.run_all("f", [[[1, 2], [3]]]) == [[1, 99], [3]]

    def test_deep_three_levels(self):
        p = compile_program(
            "fun f(m: seq(seq(seq(int)))) = (m; [2][1][1]: 0)")
        assert p.run_all("f", [[[[5]], [[6], [7, 8]]]]) == [[[5]], [[0], [7, 8]]]

    def test_inside_iterator(self):
        p = compile_program("fun f(vv: seq(seq(int))) = [v <- vv: (v; [1]: 0)]")
        assert p.run_all("f", [[[1, 2], [3]]]) == [[0, 2], [0]]

    def test_source_evaluated_once(self):
        # the deep desugaring binds the source; a nested index expression
        # with an effect-free but observable cost still behaves correctly
        p = compile_program(
            "fun f(m: seq(seq(int)), i) = (m; [i][i]: 7)")
        assert p.run_all("f", [[[1, 2], [3, 4]], 2]) == [[1, 2], [3, 7]]

    def test_update_index_errors(self):
        from repro import ReproError
        p = compile_program("fun f(v) = (v; [9]: 0)")
        with pytest.raises(ReproError):
            p.run("f", [[1]])

    def test_paper_notation_roundtrip(self):
        # mixing update syntax with other postfix forms parses cleanly
        p = compile_program(
            "fun f(v) = (v; [1]: v[2] + 1)")
        assert p.run_all("f", [[10, 20]]) == [21, 20]
