"""Documentation hygiene for the code itself: the docstring lint
(``tools/check_docstrings.py``) passes over the transformation layers —
every public API documented, every module anchored to a paper rule."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load():
    spec = importlib.util.spec_from_file_location(
        "check_docstrings", REPO_ROOT / "tools" / "check_docstrings.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_transform_and_passes_fully_documented():
    mod = _load()
    assert mod.find_violations(REPO_ROOT) == []


def test_lint_detects_missing_docstrings(tmp_path):
    mod = _load()
    pkg = tmp_path / "src" / "repro" / "transform"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "passes").mkdir()
    (pkg / "bad.py").write_text(
        '"""Module doc mentioning rule R1."""\n'
        "def undocumented(): pass\n"
        "class AlsoBad:\n    def method(self): pass\n")
    mod2 = mod  # same loaded module; find_violations takes a root
    msgs = [m for _f, _l, m in mod2.find_violations(tmp_path)]
    assert "public function 'undocumented' has no docstring" in msgs
    assert "public class 'AlsoBad' has no docstring" in msgs
    assert "public function 'AlsoBad.method' has no docstring" in msgs


def test_lint_detects_missing_rule_anchor(tmp_path):
    mod = _load()
    pkg = tmp_path / "src" / "repro" / "transform"
    pkg.mkdir(parents=True)
    (tmp_path / "src" / "repro" / "passes").mkdir()
    (pkg / "anchorless.py").write_text(
        '"""A module about nothing in particular."""\n')
    msgs = [m for _f, _l, m in mod.find_violations(tmp_path)]
    assert any("never anchors to a paper rule" in m for m in msgs)
