"""Regression tests — one per bug found and fixed while building this
reproduction.  Each test documents the failure mode so it stays fixed."""

import pytest

from repro import ReproError, compile_program


class TestT1DepthOffByOne:
    """extract(V, d) merges the top d levels into ONE level, so rule T1 is
    f^d = insert(f^1(extract(e, d)), e, d) — an early implementation used
    d-1 and produced malformed descriptors at depth >= 2."""

    def test_depth_three_elementwise(self):
        prog = compile_program(
            "fun f(n) = [a <- [1..n]: [b <- [1..a]: [c <- [1..b]: c * c]]]")
        assert prog.run_all("f", [3]) == [
            [[1]], [[1], [1, 4]], [[1], [1, 4], [1, 4, 9]]]


class TestPythonKeywordCollisions:
    """P variables named like Python parameters ('w', 'self') crashed the
    transformer when scope maps were passed as **kwargs."""

    def test_variable_named_w(self):
        prog = compile_program("fun f(w) = [x <- w: let w = x + 1 in w]")
        assert prog.run_all("f", [[1, 2]]) == [2, 3]

    def test_variable_named_self(self):
        prog = compile_program("fun f(self) = [x <- self: x]")
        assert prog.run_all("f", [[7]]) == [7]


class TestReduceOnEmpty:
    """The prelude reduce looped forever on empty input instead of raising
    (the #v == 1 guard never fired and recursion never shrank)."""

    def test_raises_not_hangs(self):
        prog = compile_program("fun f(v) = reduce(add, v)")
        for backend in ("interp", "vector", "vcode"):
            with pytest.raises(ReproError):
                prog.run("f", [[]], backend=backend)


class TestFloatSummationOrder:
    """NumPy's pairwise summation (np.sum / np.add.reduceat) rounds
    differently from the interpreter's left-to-right accumulation; the
    segmented kernels must use sequential per-segment accumulation."""

    def test_bitwise_agreement(self):
        prog = compile_program("fun f(vv: seq(seq(float))) = [v <- vv: sum(v)]")
        tricky = [[0.1] * 17 + [1e16, 1.0, -1e16], [0.1, 0.2, 0.3]]
        assert prog.run("f", [tricky]) == \
            prog.run("f", [tricky], backend="interp")

    def test_no_cross_segment_bleed(self):
        # prefix-difference summation would subtract accumulated prefixes
        prog = compile_program("fun f(vv: seq(seq(float))) = [v <- vv: sum(v)]")
        vv = [[1e16, 1.0], [1.0, 1.0, 1.0]]
        assert prog.run("f", [vv]) == [sum(vv[0]), 3.0]


class TestChainedProjectionLexing:
    """p.1.2 lexes its tail as the float literal '1.2'; the parser must
    split it back into two projections."""

    def test_chained_projection(self):
        prog = compile_program("fun f(p: (int, (int, int))) = p.2.1")
        assert prog.run_all("f", [(1, (2, 3))]) == 2

    def test_float_literal_still_lexes(self):
        prog = compile_program("fun f() = 1.25 + 0.75")
        assert prog.run_all("f", []) == 2.0


class TestPaperDistTypo:
    """The paper's printed example dist([3,4,5],[3,2,1]) = [[3,3,3],[4,4,4],
    [5]] contradicts its own definition; we follow the definition."""

    def test_definition_wins(self):
        prog = compile_program("fun f(v, r) = distribute(v, r)")
        assert prog.run_all("f", [[3, 4, 5], [3, 2, 1]]) == \
            [[3, 3, 3], [4, 4], [5]]


class TestR1SubstitutionDuplication:
    """R1 as printed substitutes v[i] for every occurrence of the bound
    variable, duplicating the gather; we bind it once with a let.  The
    observable contract: one seq_index op regardless of occurrences."""

    def test_single_gather(self):
        prog = compile_program("fun f(v) = [x <- v: x * x + x - x]")
        _r, trace = prog.vector_trace("f", [list(range(10))])
        gathers = [op for op, _n in trace
                   if op in ("seq_index", "__seq_index_shared")]
        assert len(gathers) == 1


class TestUserCallTraceDoubleCount:
    """User-function applications must not appear as vector ops in the
    trace (their bodies report the real ops)."""

    def test_no_user_names_in_trace(self):
        prog = compile_program("""
            fun sq(x) = x * x
            fun f(v) = [x <- v: sq(x)]
        """)
        _r, trace = prog.vector_trace("f", [[1, 2, 3]])
        assert not any(op.startswith("sq") for op, _n in trace)


class TestEmptyRowTypeInference:
    """Value-type inference must merge element types so ragged inputs with
    empty rows (e.g. sparse matrices) infer correctly."""

    def test_empty_rows_with_tuples(self):
        prog = compile_program(
            "fun f(rows: seq(seq((int, int)))) = [r <- rows: #r]")
        assert prog.run("f", [[[], [(1, 2)], []]]) == [0, 1, 0]


class TestBranchGuardLaziness:
    """R2d's emptiness guards must prevent evaluating a branch none of
    whose elements are selected — both for termination and for errors."""

    def test_untaken_branch_with_error(self):
        prog = compile_program(
            "fun f(v) = [x <- v: if x > 0 then x else 1 div x]")
        assert prog.run_all("f", [[1, 2, 3]]) == [1, 2, 3]

    def test_recursion_terminates_on_uniform_input(self):
        prog = compile_program("""
            fun qs(s) =
              if #s <= 1 then s
              else let p = s[1],
                       rest = drop(s, 1),
                       parts = [q <- [[x <- rest: x], []]: qs(q)]
                   in concat(append(parts[1], p), parts[2])
        """)
        # worst-case pivot: recursion depth = n; guards must still bottom out
        assert prog.run("qs", [[5] * 12]) == [5] * 12


class TestCLIBrokenPipe:
    """CLI output piped into `head` must not traceback."""

    def test_broken_pipe_handled(self, tmp_path):
        import subprocess
        import sys
        f = tmp_path / "p.p"
        f.write_text("fun main(k) = [i <- [1..k]: i]")
        proc = subprocess.run(
            f"{sys.executable} -m repro transform {f} -t int | head -1",
            shell=True, capture_output=True, text=True, cwd="/root/repo")
        assert "Traceback" not in proc.stderr
