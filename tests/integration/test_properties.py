"""Property-based tests (hypothesis) for the representation laws and the
soundness of the transformation on *randomly generated programs*."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_program
from repro.lang.types import INT, TSeq, seq_of
from repro.vector import segments as S
from repro.vector.convert import from_python, to_python
from repro.vector.extract_insert import extract, insert

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

ints = st.integers(min_value=-50, max_value=50)


def nested_lists(depth: int):
    base = st.lists(ints, max_size=5)
    s = base
    for _ in range(depth - 1):
        s = st.lists(s, max_size=4)
    return s


counts = st.lists(st.integers(min_value=0, max_value=6), max_size=8)


# ---------------------------------------------------------------------------
# Representation laws
# ---------------------------------------------------------------------------


class TestRepresentationProperties:
    @given(nested_lists(1))
    def test_roundtrip_depth1(self, v):
        nv = from_python(v, TSeq(INT))
        assert to_python(nv, TSeq(INT)) == v

    @given(nested_lists(2))
    def test_roundtrip_depth2(self, v):
        t = seq_of(INT, 2)
        assert to_python(from_python(v, t), t) == v

    @given(nested_lists(3))
    def test_roundtrip_depth3(self, v):
        t = seq_of(INT, 3)
        assert to_python(from_python(v, t), t) == v

    @given(nested_lists(3))
    def test_invariant(self, v):
        nv = from_python(v, seq_of(INT, 3))
        levels = [*nv.descs, nv.values]
        for i in range(len(levels) - 1):
            assert len(levels[i + 1]) == int(levels[i].sum())

    @given(nested_lists(3), st.integers(min_value=1, max_value=3))
    def test_extract_insert_identity(self, v, d):
        nv = from_python(v, seq_of(INT, 3))
        assert insert(extract(nv, d), nv, d) == nv

    @given(nested_lists(2))
    def test_extract_full_is_flat_concat(self, v):
        nv = from_python(v, seq_of(INT, 2))
        flat = extract(nv, 2)
        assert to_python(flat, TSeq(INT)) == [x for row in v for x in row]


class TestSegmentedKernelProperties:
    @given(counts)
    def test_iota_matches_naive(self, cs):
        got = S.seg_iota(np.asarray(cs, dtype=np.int64)).tolist()
        want = [i for c in cs for i in range(c)]
        assert got == want

    @given(st.lists(ints, max_size=30), st.data())
    def test_seg_sum_matches_naive(self, vals, data):
        cs = data.draw(partitions_of(len(vals)))
        got = S.seg_sum(np.asarray(vals, dtype=np.int64),
                        np.asarray(cs, dtype=np.int64)).tolist()
        want, pos = [], 0
        for c in cs:
            want.append(sum(vals[pos:pos + c]))
            pos += c
        assert got == want

    @given(st.lists(ints, max_size=30), st.data())
    def test_plus_scan_matches_naive(self, vals, data):
        cs = data.draw(partitions_of(len(vals)))
        got = S.seg_plus_scan(np.asarray(vals, dtype=np.int64),
                              np.asarray(cs, dtype=np.int64)).tolist()
        want, pos = [], 0
        for c in cs:
            acc = 0
            for x in vals[pos:pos + c]:
                want.append(acc)
                acc += x
            pos += c
        assert got == want

    @given(st.lists(ints, max_size=30), st.data())
    def test_max_scan_matches_naive(self, vals, data):
        cs = data.draw(partitions_of(len(vals)))
        got = S.seg_max_scan(np.asarray(vals, dtype=np.int64),
                             np.asarray(cs, dtype=np.int64)).tolist()
        want, pos = [], 0
        for c in cs:
            seg = vals[pos:pos + c]
            run = None
            for x in seg:
                run = x if run is None else max(run, x)
                want.append(run)
            pos += c
        assert got == want


@st.composite
def partitions_of(draw, total):
    """Counts summing exactly to ``total`` (via random cut points)."""
    k = draw(st.integers(min_value=0, max_value=6))
    cuts = sorted(draw(st.lists(st.integers(0, total), min_size=k, max_size=k)))
    bounds = [0, *cuts, total]
    return [bounds[i + 1] - bounds[i] for i in range(len(bounds) - 1)]


# ---------------------------------------------------------------------------
# Paper laws on P programs (section 2)
# ---------------------------------------------------------------------------

_LAWS = compile_program("""
    fun comb(m, v, u) = combine(m, v, u)
    fun restr(v, m) = restrict(v, m)
    fun notseq(m) = [x <- m: not x]
""")


class TestPaperLaws:
    @given(st.lists(st.tuples(ints, st.booleans()), max_size=10))
    def test_restrict_combine_inverse(self, pairs):
        # paper section 2: if R = combine(M,V,U) then restrict(R,M) = V
        # and restrict(R, not M) = U
        m = [b for _, b in pairs]
        v = [x for x, b in pairs if b]
        u = [x * 2 + 1 for x, b in pairs if not b]
        ts = ["seq(bool)", "seq(int)", "seq(int)"]
        r = _LAWS.run("comb", [m, v, u], types=ts)
        assert _LAWS.run("restr", [r, m], types=["seq(int)", "seq(bool)"]) == v
        notm = _LAWS.run("notseq", [m], types=["seq(bool)"])
        assert _LAWS.run("restr", [r, notm], types=["seq(int)", "seq(bool)"]) == u

    @given(st.lists(st.tuples(ints, st.booleans()), max_size=10))
    def test_laws_hold_on_interp_too(self, pairs):
        m = [b for _, b in pairs]
        v = [x for x, b in pairs if b]
        u = [x for x, b in pairs if not b]
        ts = ["seq(bool)", "seq(int)", "seq(int)"]
        r = _LAWS.run("comb", [m, v, u], backend="interp", types=ts)
        assert _LAWS.run("restr", [r, m], backend="interp", types=["seq(int)", "seq(bool)"]) == v


# ---------------------------------------------------------------------------
# Random-program soundness: interp == vector == vcode
# ---------------------------------------------------------------------------

_PROGRAMS = [
    # (source, arg strategy description)
    ("fun main(v) = [x <- v: x * x - 1]", 1),
    ("fun main(v) = [x <- v: if x > 0 then x else 0 - x]", 1),
    ("fun main(v) = [x <- v | odd(x): x + 1]", 1),
    ("fun main(v) = [x <- v: [j <- [1..(x mod 4) + 1]: x + j]]", 1),
    ("fun main(v) = [x <- v: sum([j <- [1..(x mod 5) + 1]: j * x])]", 1),
    ("fun main(v) = sum([x <- v: if even(x) then x else 0])", 1),
    ("fun main(v) = [i <- [1..#v]: v[#v - i + 1]]", 1),
    ("fun main(v) = [x <- v: [y <- v: x * y]]", 1),
    ("fun main(v) = concat([x <- v: x + 1], reverse(v))", 1),
    ("fun main(v) = [x <- v: (x, x > 0)]", 1),
    ("""fun f(n) = if n <= 1 then 1 else n + f(n - 2)
        fun main(v) = [x <- v: f(abs_(x) mod 9)]""", 1),
    ("fun main(v) = [x <- v: maxval(concat([x], v))]", 1),
    ("""fun main(v) = [x <- v: reduce(add, concat([x], [1, 2]))]""", 1),
    ("fun main(v, w) = [x <- v: [y <- w: if x > y then x else y]]", 2),
]


class TestRandomProgramSoundness:
    @pytest.mark.parametrize("src,nargs", _PROGRAMS)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(data=st.data())
    def test_backends_agree(self, src, nargs, data):
        prog = compile_program(src)
        args = [data.draw(st.lists(ints, max_size=6)) for _ in range(nargs)]
        ref = prog.run("main", args, backend="interp")
        vec = prog.run("main", args, backend="vector")
        assert vec == ref
        vc = prog.run("main", args, backend="vcode")
        assert vc == ref


# ---------------------------------------------------------------------------
# Random expression generator: deeper structural coverage
# ---------------------------------------------------------------------------


@st.composite
def int_expr(draw, vars_, depth):
    """A total (error-free) integer-valued P expression over ``vars_``."""
    if depth <= 0 or draw(st.integers(0, 3)) == 0:
        choices = [str(draw(st.integers(-9, 9)))]
        choices.extend(vars_)
        return draw(st.sampled_from(choices))
    kind = draw(st.sampled_from(["add", "mul", "sub", "if", "sum", "mod"]))
    if kind in ("add", "mul", "sub"):
        a = draw(int_expr(vars_, depth - 1))
        b = draw(int_expr(vars_, depth - 1))
        op = {"add": "+", "mul": "*", "sub": "-"}[kind]
        return f"({a} {op} {b})"
    if kind == "mod":
        a = draw(int_expr(vars_, depth - 1))
        return f"({a} mod 7)"
    if kind == "if":
        a = draw(int_expr(vars_, depth - 1))
        b = draw(int_expr(vars_, depth - 1))
        c = draw(int_expr(vars_, depth - 1))
        return f"(if {a} > {b} then {b} else {c})"
    # sum of a small iterator whose bound derives from an expression
    a = draw(int_expr(vars_, depth - 1))
    body = draw(int_expr(vars_ + ["q"], depth - 1))
    return f"sum([q <- [1..(({a}) mod 4) + 1]: {body}])"


class TestGeneratedExpressions:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(data=st.data())
    def test_soundness_on_generated_bodies(self, data):
        body = data.draw(int_expr(["x"], 2))
        src = f"fun main(v) = [x <- v: {body}]"
        prog = compile_program(src)
        args = [data.draw(st.lists(ints, min_size=0, max_size=5))]
        ref = prog.run("main", args, backend="interp")
        assert prog.run("main", args, backend="vector") == ref

    @settings(max_examples=12, deadline=None,
              suppress_health_check=list(HealthCheck))
    @given(data=st.data())
    def test_soundness_under_two_iterators(self, data):
        body = data.draw(int_expr(["x", "y"], 2))
        src = f"fun main(v) = [x <- v: [y <- [1..(x mod 3) + 1]: {body}]]"
        prog = compile_program(src)
        args = [data.draw(st.lists(st.integers(0, 20), max_size=4))]
        ref = prog.run("main", args, backend="interp")
        assert prog.run("main", args, backend="vector") == ref
