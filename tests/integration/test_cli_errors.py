"""Unified CLI error handling: one-line diagnostics, documented exit
codes, never a raw traceback (docs/RELIABILITY.md)."""

import pytest

import repro.cli as cli
from repro.cli import (
    EXIT_DISAGREE, EXIT_ERROR, EXIT_INVARIANT, EXIT_OK, EXIT_RESOURCE, main,
)
from repro.errors import EvalError, InvariantError, ResourceLimitError

SRC = """
fun qsort(v) =
  if #v <= 1 then v
  else let p = v[1 + #v / 2] in
    concat(concat(qsort([x <- v | x < p: x]),
                  [x <- v | x == p: x]),
           qsort([x <- v | x > p: x]))
fun main(n) = qsort([i <- [1..n]: (i * i) mod 19])
fun loop(v) = if #v == 0 then v else loop(v)
fun hang(n) = loop([1..n])
"""


@pytest.fixture()
def demo(tmp_path):
    p = tmp_path / "demo.p"
    p.write_text(SRC)
    return str(p)


def run_cli(capsys, *argv):
    rc = main(list(argv))
    cap = capsys.readouterr()
    return rc, cap.out, cap.err


class TestExitCodes:
    def test_success(self, demo, capsys):
        rc, out, err = run_cli(capsys, "run", demo, "-a", "8")
        assert rc == EXIT_OK and err == ""

    def test_runtime_error_is_one_line(self, demo, capsys):
        rc, out, err = run_cli(capsys, "run", demo, "-e", "nosuch", "-a", "1")
        assert rc == EXIT_ERROR
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_resource_limit_exit_3(self, demo, capsys):
        rc, out, err = run_cli(capsys, "run", demo, "-e", "hang", "-a", "5",
                               "--max-depth", "50")
        assert rc == EXIT_RESOURCE
        assert err.startswith("resource limit:")
        assert "non-shrinking" in err
        assert "Traceback" not in err

    def test_usage_error_exit_2(self, demo):
        with pytest.raises(SystemExit) as ei:
            main(["run", demo, "--backend", "bogus"])
        assert ei.value.code == 2

    def test_invariant_maps_to_exit_4(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_dispatch", lambda ns: (_ for _ in ()).throw(
            InvariantError("kernel:concat", "boom")))
        rc, out, err = run_cli(capsys, "eval", "1")
        assert rc == EXIT_INVARIANT
        assert err.startswith("invariant violation:")
        assert "kernel:concat" in err

    def test_resource_error_order_beats_reproerror(self, monkeypatch, capsys):
        # ResourceLimitError is a ReproError; the reporter must still
        # classify it as exit 3, not the generic 1
        monkeypatch.setattr(cli, "_dispatch", lambda ns: (_ for _ in ()).throw(
            ResourceLimitError("steps", 11, 10, stage="vm:f")))
        rc, _out, err = run_cli(capsys, "eval", "1")
        assert rc == EXIT_RESOURCE

    def test_recursionerror_reported_not_raised(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_dispatch",
                            lambda ns: (_ for _ in ()).throw(RecursionError()))
        rc, _out, err = run_cli(capsys, "eval", "1")
        assert rc == EXIT_ERROR
        assert "--max-depth" in err

    def test_plain_reproerror_exit_1(self, monkeypatch, capsys):
        monkeypatch.setattr(cli, "_dispatch", lambda ns: (_ for _ in ()).throw(
            EvalError("division by zero")))
        rc, _out, err = run_cli(capsys, "eval", "1 / 0")
        assert rc == EXIT_ERROR


class TestCheckCommand:
    def test_agreement_exit_0(self, demo, capsys):
        rc, out, err = run_cli(capsys, "check", demo, "-a", "10")
        assert rc == EXIT_OK
        assert "back ends agree" in out

    def test_disagreement_exit_5(self, demo, capsys, monkeypatch):
        from repro.api import CompiledProgram
        real = CompiledProgram.run

        def skew(self, fname, args, backend="vector", *a, **kw):
            v = real(self, fname, args, backend, *a, **kw)
            return v + [0] if backend == "vcode" else v
        monkeypatch.setattr(CompiledProgram, "run", skew)
        rc, out, err = run_cli(capsys, "check", demo, "-a", "4")
        assert rc == EXIT_DISAGREE
        assert "DISAGREE" in err


class TestGuardFlags:
    def test_check_flag_runs_clean(self, demo, capsys):
        rc, out, _ = run_cli(capsys, "run", demo, "-a", "6", "--check")
        assert rc == EXIT_OK

    def test_eval_with_budget(self, capsys):
        rc, _out, err = run_cli(capsys, "eval",
                                "sum([i <- [1..4000]: i])", "--max-elements",
                                "100")
        assert rc == EXIT_RESOURCE

    def test_simulate_with_check(self, demo, capsys):
        rc, out, _ = run_cli(capsys, "simulate", demo, "-a", "6",
                             "--check", "-p", "4")
        assert rc == EXIT_OK

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as ei:
            main(["--help"])
        assert ei.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "back ends disagree" in out


class TestFuzzCommand:
    def test_fuzz_smoke_exit_0(self, capsys):
        rc, out, err = run_cli(capsys, "fuzz", "--seed", "0", "--count", "5",
                               "--quiet")
        assert rc == EXIT_OK
        assert "5 programs, 5 agreed" in out
