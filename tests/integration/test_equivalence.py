"""The paper's soundness property, end to end:

    interpret(P, args)  ==  vector_execute(transform(P), args)

for programs covering every construct: flat/nested/filtered iterators,
conditionals (uniform and data-dependent), recursion (including recursion
*inside* frames, which exercises the R2d emptiness guards), tuples,
higher-order application, and frames of function values.
"""

import pytest

from repro import FunVal, compile_program


def both(src, fname, args, types=None):
    prog = compile_program(src)
    vec, ref = prog.run_both(fname, args, types)
    return vec


class TestFlatIterators:
    def test_paper_sqs(self):
        assert both("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [5]) == \
            [1, 4, 9, 16, 25]

    def test_empty_iteration(self):
        assert both("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [0]) == []

    def test_value_domain(self):
        assert both("fun f(v) = [x <- v: x + 10]", "f", [[5, 1]]) == [15, 11]

    def test_loop_invariant_expression(self):
        assert both("fun f(n, c) = [i <- [1..n]: c * c + i]", "f", [3, 5]) == \
            [26, 27, 28]

    def test_constant_body(self):
        assert both("fun f(n) = [i <- [1..n]: 7]", "f", [4]) == [7, 7, 7, 7]

    def test_index_into_shared(self):
        assert both("fun g(v, ix) = [i <- ix: v[i]]", "g",
                    [[10, 20, 30], [3, 1, 3]]) == [30, 10, 30]

    def test_range_in_body(self):
        assert both("fun f(n) = [i <- [1..n]: [i..n]]", "f", [3]) == \
            [[1, 2, 3], [2, 3], [3]]

    def test_two_iterators_sequential(self):
        src = "fun f(n) = concat([i <- [1..n]: i], [i <- [1..n]: 0 - i])"
        assert both(src, "f", [2]) == [1, 2, -1, -2]


class TestNestedIterators:
    def test_paper_tri_i(self):
        # [i <- [1..N]: [j <- [1..i]: i]] from section 3
        assert both("fun f(n) = [i <- [1..n]: [j <- [1..i]: i]]", "f", [3]) == \
            [[1], [2, 2], [3, 3, 3]]

    def test_paper_tri_j(self):
        # [i <- [1..N]: [j <- [1..i]: j]] from section 3
        assert both("fun f(n) = [i <- [1..n]: [j <- [1..i]: j]]", "f", [3]) == \
            [[1], [1, 2], [1, 2, 3]]

    def test_depth_three(self):
        src = "fun f(n) = [i <- [1..n]: [j <- [1..i]: [k <- [1..j]: i*100 + j*10 + k]]]"
        assert both(src, "f", [3]) == [
            [[111]],
            [[211], [221, 222]],
            [[311], [321, 322], [331, 332, 333]],
        ]

    def test_outer_var_at_depth_three(self):
        src = "fun f(n) = [i <- [1..n]: [j <- [1..2]: [k <- [1..2]: i]]]"
        assert both(src, "f", [2]) == [[[1, 1], [1, 1]], [[2, 2], [2, 2]]]

    def test_constant_inner_bound(self):
        src = "fun f(n) = [i <- [1..n]: [j <- [1..2]: j]]"
        assert both(src, "f", [3]) == [[1, 2], [1, 2], [1, 2]]

    def test_nested_call(self):
        src = """
            fun sqs(n) = [i <- [1..n]: i*i]
            fun nested(k) = [i <- [1..k]: sqs(i)]
        """
        assert both(src, "nested", [4]) == [[1], [1, 4], [1, 4, 9], [1, 4, 9, 16]]

    def test_irregular_lengths(self):
        src = "fun f(v) = [x <- v: [y <- x: y * 2]]"
        assert both(src, "f", [[[1, 2, 3], [], [9]]]) == [[2, 4, 6], [], [18]]

    def test_sum_of_rows(self):
        src = "fun rowsums(m) = [row <- m: sum(row)]"
        assert both(src, "rowsums", [[[1, 2], [3], []]]) == [3, 3, 0]


class TestFilters:
    def test_paper_oddsq(self):
        src = """
            fun sqs(n) = [i <- [1..n]: i*i]
            fun oddsq(n) = [i <- [1..n] | odd(i): sqs(i)]
        """
        assert both(src, "oddsq", [5]) == [[1], [1, 4, 9], [1, 4, 9, 16, 25]]

    def test_filter_inside_iterator(self):
        src = "fun f(n) = [i <- [1..n]: [j <- [1..i] | even(j): j]]"
        assert both(src, "f", [4]) == [[], [2], [2], [2, 4]]

    def test_filter_all_out(self):
        assert both("fun f(v) = [x <- v | x > 100: x]", "f", [[1, 2]]) == []


class TestConditionals:
    def test_data_dependent(self):
        src = "fun f(v) = [x <- v: if x > 0 then x else 0 - x]"
        assert both(src, "f", [[3, -4, 0, -1]]) == [3, 4, 0, 1]

    def test_all_then(self):
        src = "fun f(v) = [x <- v: if x > 0 then x else 0 - x]"
        assert both(src, "f", [[1, 2]]) == [1, 2]

    def test_all_else(self):
        src = "fun f(v) = [x <- v: if x > 0 then x else 0 - x]"
        assert both(src, "f", [[-1, -2]]) == [1, 2]

    def test_branch_with_sequences(self):
        src = "fun f(v) = [x <- v: if x > 2 then [1..x] else []]"
        assert both(src, "f", [[1, 3, 2, 4]]) == [[], [1, 2, 3], [], [1, 2, 3, 4]]

    def test_nested_conditionals(self):
        src = """
            fun sgn(v) = [x <- v: if x > 0 then 1 else if x == 0 then 0 else 0-1]
        """
        assert both(src, "sgn", [[5, 0, -5, 2]]) == [1, 0, -1, 1]

    def test_conditional_under_two_iterators(self):
        src = "fun f(n) = [i <- [1..n]: [j <- [1..i]: if even(j) then i else j]]"
        assert both(src, "f", [4]) == \
            [[1], [1, 2], [1, 3, 3], [1, 4, 3, 4]]

    def test_uniform_condition(self):
        src = "fun f(v, b) = [x <- v: if b then x else 0 - x]"
        assert both(src, "f", [[1, 2], True]) == [1, 2]
        assert both(src, "f", [[1, 2], False]) == [-1, -2]

    def test_branches_only_one_frame_dependent(self):
        src = "fun f(v, c) = [x <- v: if x > 0 then c else x]"
        assert both(src, "f", [[2, -3], 99]) == [99, -3]


class TestRecursion:
    def test_plain_recursion_depth0(self):
        src = "fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)"
        assert both(src, "fact", [10]) == 3628800

    def test_recursion_inside_frame(self):
        # fact applied at depth 1: recursion through R2d guards
        src = """
            fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
            fun facts(v) = [x <- v: fact(x)]
        """
        assert both(src, "facts", [[1, 3, 5, 0, 2]]) == [1, 6, 120, 1, 2]

    def test_recursive_sequence_builder(self):
        src = """
            fun down(n) = if n <= 0 then [] else concat([n], down(n - 1))
            fun all(k) = [i <- [1..k]: down(i)]
        """
        assert both(src, "all", [3]) == [[1], [2, 1], [3, 2, 1]]

    def test_fib_in_frame(self):
        src = """
            fun fib(n) = if n <= 2 then 1 else fib(n - 1) + fib(n - 2)
            fun fibs(k) = [i <- [1..k]: fib(i)]
        """
        assert both(src, "fibs", [8]) == [1, 1, 2, 3, 5, 8, 13, 21]

    def test_divide_and_conquer_sum(self):
        src = """
            fun dcsum(v) =
              if #v == 0 then 0
              else if #v == 1 then v[1]
              else let h = #v div 2
                   in dcsum(take(v, h)) + dcsum(drop(v, h))
        """
        assert both(src, "dcsum", [list(range(1, 20))]) == sum(range(1, 20))


class TestTuples:
    def test_tuple_results(self):
        src = "fun f(v) = [x <- v: (x, x * x)]"
        assert both(src, "f", [[1, 2, 3]]) == [(1, 1), (2, 4), (3, 9)]

    def test_tuple_projection_in_frame(self):
        # a bare parameter's tuple width is not inferrable: annotate
        src = "fun f(v: seq((int, int))) = [p <- v: p.1 + p.2]"
        assert both(src, "f", [[(1, 10), (2, 20)]]) == [11, 22]

    def test_tuple_projection_constrained_later_in_body(self):
        # the deferred-retry path: q.1 appears textually before the call
        # that fixes q's tuple type
        src = """
            fun snd(q: (int, int)) = q.2
            fun f(q) = q.1 + snd(q)
        """
        assert both(src, "f", [(3, 4)], types=["(int, int)"]) == 7

    def test_zip2_prelude(self):
        assert both("fun f(v, w) = zip2(v, w)", "f", [[1, 2], [5, 6]]) == \
            [(1, 5), (2, 6)]

    def test_tuple_of_seqs(self):
        src = "fun f(n) = [i <- [1..n]: ([1..i], i)]"
        assert both(src, "f", [2]) == [([1], 1), ([1, 2], 2)]

    def test_loop_invariant_tuple(self):
        src = "fun f(n, p: (int, int)) = [i <- [1..n]: p.1 + i]"
        assert both(src, "f", [2, (10, 0)]) == [11, 12]


class TestHigherOrder:
    def test_map_builtin(self):
        src = "fun mapf(f, v) = [x <- v: f(x)]"
        assert both(src, "mapf", [FunVal("neg"), [1, -2]],
                    types=["(int) -> int", "seq(int)"]) == [-1, 2]

    def test_map_user_function(self):
        src = """
            fun double(x) = 2 * x
            fun mapf(f, v) = [x <- v: f(x)]
            fun main(v) = mapf(double, v)
        """
        assert both(src, "main", [[1, 2, 3]]) == [2, 4, 6]

    def test_map_lambda(self):
        src = "fun main(v) = [x <- v: (fn(y) => y + 100)(x)]"
        assert both(src, "main", [[1, 2]]) == [101, 102]

    def test_reduce_prelude_add(self):
        assert both("fun f(v) = reduce(add, v)", "f", [[1, 2, 3, 4, 5]]) == 15

    def test_reduce_user_fn(self):
        src = """
            fun m(a, b) = a * b
            fun f(v) = reduce(m, v)
        """
        assert both(src, "f", [[1, 2, 3, 4]]) == 24

    def test_reduce_inside_iterator(self):
        # higher-order *nested* parallel application
        src = "fun f(vv) = [v <- vv: reduce(add, v)]"
        assert both(src, "f", [[[1, 2], [3, 4, 5], [10]]]) == [3, 12, 10]

    def test_frame_of_function_values(self):
        # different functions at different frame positions: group dispatch
        src = """
            fun pick(v) = [x <- v: (if odd(x) then neg else abs_)(x)]
        """
        assert both(src, "pick", [[1, -2, 3, -4]]) == [-1, 2, -3, 4]

    def test_frame_of_user_functions(self):
        src = """
            fun inc(x) = x + 1
            fun dec(x) = x - 1
            fun pick(v) = [x <- v: (if x > 0 then inc else dec)(x)]
        """
        assert both(src, "pick", [[5, -5, 0, 2]]) == [6, -6, -1, 3]

    def test_seq_of_functions(self):
        src = """
            fun applyall(fs, x) = [f <- fs: f(x)]
            fun main(x) = applyall([neg, abs_], x)
        """
        assert both(src, "main", [-7]) == [7, 7]


class TestPreludeOnVector:
    def test_concat_p(self):
        assert both("fun f(v, w) = concat_p(v, w)", "f", [[1, 2], [3]]) == [1, 2, 3]

    def test_flatten_p(self):
        assert both("fun f(v) = flatten_p(v)", "f", [[[1], [2, 3], []]]) == [1, 2, 3]

    def test_distribute(self):
        assert both("fun f(v, r) = distribute(v, r)", "f",
                    [[3, 4, 5], [3, 2, 1]]) == [[3, 3, 3], [4, 4], [5]]

    def test_reverse(self):
        assert both("fun f(v) = reverse(v)", "f", [[1, 2, 3]]) == [3, 2, 1]

    def test_count(self):
        assert both("fun f(v) = count([x <- v: x > 2])", "f", [[1, 3, 5]]) == 2


class TestErrorParity:
    """Both back ends must reject the same bad executions."""

    @pytest.mark.parametrize("src,fname,args", [
        ("fun f(v) = [x <- v: v[x]]", "f", [[1, 5]]),      # index range
        ("fun f(v) = [x <- v: x div (x - x)]", "f", [[1]]),  # div by zero
    ])
    def test_both_raise(self, src, fname, args):
        from repro.errors import ReproError
        prog = compile_program(src)
        with pytest.raises(ReproError):
            prog.run(fname, args, backend="interp")
        with pytest.raises(ReproError):
            prog.run(fname, args, backend="vector")
