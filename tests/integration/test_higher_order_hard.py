"""Hard higher-order cases: function frames whose functions return
sequences of different lengths, dispatch at depth 2, tuples through
dynamic application, and function values flowing through data structures."""


from repro import FunVal, compile_program


class TestSequenceReturningDispatch:
    def test_mixed_functions_ragged_results(self):
        src = """
            fun ups(n) = [1..n]
            fun downs(n) = reverse([1..n])
            fun f(v) = [x <- v: (if odd(x) then ups else downs)(x)]
        """
        prog = compile_program(src)
        got = prog.run_all("f", [[3, 2, 1, 4]])
        assert got == [[1, 2, 3], [2, 1], [1], [4, 3, 2, 1]]

    def test_empty_and_nonempty_results(self):
        src = """
            fun none(n) = []
            fun some(n) = [n, n]
            fun f(v) = [x <- v: (if x > 0 then some else none)(x)]
        """
        prog = compile_program(src)
        assert prog.run_all("f", [[1, -1, 2]]) == [[1, 1], [], [2, 2]]

    def test_dispatch_at_depth_two(self):
        src = """
            fun twice(x) = 2 * x
            fun thrice(x) = 3 * x
            fun f(vv: seq(seq(int))) =
              [v <- vv: [x <- v: (if even(x) then twice else thrice)(x)]]
        """
        prog = compile_program(src)
        got = prog.run_all("f", [[[1, 2], [3], [4]]])
        assert got == [[3, 4], [9], [8]]

    def test_three_way_dispatch(self):
        src = """
            fun a(x) = x + 100
            fun b(x) = x + 200
            fun c(x) = x + 300
            fun f(v) = [x <- v:
               (if x mod 3 == 0 then a else if x mod 3 == 1 then b else c)(x)]
        """
        prog = compile_program(src)
        got = prog.run_all("f", [[0, 1, 2, 3, 4, 5]])
        assert got == [100, 201, 302, 103, 204, 305]


class TestTuplesThroughDispatch:
    def test_tuple_returning_functions(self):
        src = """
            fun mk1(x) = (x, x * x)
            fun mk2(x) = (0 - x, x)
            fun f(v) = [x <- v: (if odd(x) then mk1 else mk2)(x)]
        """
        prog = compile_program(src)
        assert prog.run_all("f", [[1, 2, 3]]) == [(1, 1), (-2, 2), (3, 9)]

    def test_tuple_arguments_to_dispatch(self):
        src = """
            fun addp(p: (int, int)) = p.1 + p.2
            fun mulp(p: (int, int)) = p.1 * p.2
            fun f(v) = [x <- v: (if x > 0 then addp else mulp)((x, x + 1))]
        """
        prog = compile_program(src)
        assert prog.run_all("f", [[2, -3]]) == [5, 6]


class TestFunctionValuesInData:
    def test_sequence_of_functions_built_conditionally(self):
        src = """
            fun pick(n) = if odd(n) then neg else abs_
            fun f(v) = [x <- v: (pick(x))(x)]
        """
        prog = compile_program(src)
        assert prog.run_all("f", [[1, -2, 3]]) == [-1, 2, -3]

    def test_function_in_tuple(self):
        src = """
            fun f(v) = [x <- v:
              let p = (x, if odd(x) then neg else abs_)
              in (p.2)(p.1)]
        """
        prog = compile_program(src)
        assert prog.run_all("f", [[1, -2, 3, -4]]) == [-1, 2, -3, 4]

    def test_map_over_function_sequence_applied_to_row(self):
        src = """
            fun apply_all(fs, v) = [f <- fs: [x <- v: f(x)]]
            fun main(v) = apply_all([neg, abs_], v)
        """
        prog = compile_program(src)
        assert prog.run_all("main", [[1, -2]]) == [[-1, 2], [1, 2]]

    def test_higher_order_recursion(self):
        src = """
            fun iterate(f, x, n) = if n == 0 then x else iterate(f, f(x), n - 1)
            fun inc(x) = x + 1
            fun f(v) = [x <- v: iterate(inc, x, 5)]
        """
        prog = compile_program(src)
        assert prog.run_all("f", [[0, 10]]) == [5, 15]

    def test_entry_function_value_used_in_frame_dispatch(self):
        src = "fun f(g, v) = [x <- v: (if x > 0 then g else neg)(x)]"
        prog = compile_program(src)
        got = prog.run("f", [FunVal("abs_"), [2, -2]],
                       types=["(int) -> int", "seq(int)"])
        assert got == [2, 2]


class TestReduceExotics:
    def test_reduce_with_noncommutative_fn(self):
        # pairwise-halving is order-preserving: (a-b) semantics must match
        src = "fun f(v) = reduce(sub, v)"
        prog = compile_program(src)
        for v in ([5], [5, 2], [9, 3, 2], [8, 1, 1, 1, 1]):
            assert prog.run("f", [v]) == prog.run("f", [v], backend="interp")

    def test_reduce_of_sequences_with_concat(self):
        src = "fun f(vv: seq(seq(int))) = reduce(concat, vv)"
        prog = compile_program(src)
        vv = [[1], [2, 3], [], [4]]
        assert prog.run_all("f", [vv]) == [1, 2, 3, 4]

    def test_reduce_inside_reduce(self):
        src = """
            fun rowsum(v) = reduce_with(add, 0, v)
            fun f(vv: seq(seq(int))) =
              reduce_with(add, 0, [v <- vv: rowsum(v)])
        """
        prog = compile_program(src)
        vv = [[1, 2], [], [3, 4, 5]]
        assert prog.run_all("f", [vv]) == 15
