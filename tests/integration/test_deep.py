"""Stress coverage for the hard corners of the flattening machinery:
depth-3/4 frames, tuples inside deep frames, __rep of sequence values,
conditionals with sequence-typed branches at depth >= 2, and group dispatch
under multiple iterators."""

import random


from repro import compile_program


def allthree(src, fname, args, types=None):
    prog = compile_program(src)
    return prog.run_all(fname, args, types)


class TestDepthFour:
    def test_scalar_at_depth_four(self):
        src = ("fun f(n) = [a <- [1..n]: [b <- [1..a]: [c <- [1..b]:"
               " [d <- [1..c]: a * 1000 + b * 100 + c * 10 + d]]]]")
        got = allthree(src, "f", [3])
        want = [[[[a * 1000 + b * 100 + c * 10 + d
                   for d in range(1, c + 1)]
                  for c in range(1, b + 1)]
                 for b in range(1, a + 1)]
                for a in range(1, 4)]
        assert got == want

    def test_sequence_result_at_depth_three(self):
        src = "fun f(n) = [a <- [1..n]: [b <- [1..a]: [1..b]]]"
        assert allthree(src, "f", [3]) == [
            [[1]],
            [[1], [1, 2]],
            [[1], [1, 2], [1, 2, 3]],
        ]

    def test_outermost_var_distributed_three_levels(self):
        src = "fun f(n) = [a <- [1..n]: [b <- [1..2]: [c <- [1..2]: a]]]"
        assert allthree(src, "f", [2]) == [
            [[1, 1], [1, 1]], [[2, 2], [2, 2]]]

    def test_middle_var_distributed(self):
        src = "fun f(n) = [a <- [1..2]: [b <- [1..n]: [c <- [1..2]: b]]]"
        assert allthree(src, "f", [3]) == [
            [[1, 1], [2, 2], [3, 3]], [[1, 1], [2, 2], [3, 3]]]


class TestConditionalsDeep:
    def test_conditional_at_depth_three(self):
        src = ("fun f(n) = [a <- [1..n]: [b <- [1..a]: [c <- [1..b]:"
               " if odd(c) then a else 0 - c]]]")
        got = allthree(src, "f", [3])
        want = [[[a if c % 2 else -c for c in range(1, b + 1)]
                 for b in range(1, a + 1)] for a in range(1, 4)]
        assert got == want

    def test_sequence_branches_at_depth_two(self):
        src = ("fun f(n) = [a <- [1..n]: [b <- [1..a]:"
               " if even(b) then [1..b] else []]]")
        got = allthree(src, "f", [4])
        want = [[list(range(1, b + 1)) if b % 2 == 0 else []
                 for b in range(1, a + 1)] for a in range(1, 5)]
        assert got == want

    def test_empty_else_branch_everywhere(self):
        src = "fun f(v) = [x <- v: if x > 100 then x else x]"
        assert allthree(src, "f", [[1, 2]]) == [1, 2]

    def test_nested_conditionals_at_depth(self):
        src = ("fun f(v) = [x <- v: if x > 0 then (if odd(x) then 1 else 2)"
               " else (if x == 0 then 0 else 0 - 1)]")
        assert allthree(src, "f", [[5, 4, 0, -7]]) == [1, 2, 0, -1]

    def test_guard_prevents_work_on_empty_branch(self):
        # all elements take the then-branch; else branch contains an
        # expression that would error on any element (index 0 of x-range)
        src = "fun f(v) = [x <- v: if x > 0 then x else [1..x][1]]"
        assert allthree(src, "f", [[3, 2, 1]]) == [3, 2, 1]


class TestRepOfSequences:
    def test_invariant_sequence_body(self):
        # body is loop-invariant and sequence-valued: __rep of a seq value
        src = "fun f(n, w) = [i <- [1..n]: w]"
        assert allthree(src, "f", [3, [7, 8]]) == [[7, 8], [7, 8], [7, 8]]

    def test_invariant_sequence_body_depth_two(self):
        src = "fun f(n, w) = [i <- [1..n]: [j <- [1..2]: w]]"
        assert allthree(src, "f", [2, [9]]) == [[[9], [9]], [[9], [9]]]

    def test_invariant_nested_sequence(self):
        src = "fun f(n, w: seq(seq(int))) = [i <- [1..n]: w]"
        assert allthree(src, "f", [2, [[1], [2, 3]]]) == \
            [[[1], [2, 3]], [[1], [2, 3]]]

    def test_invariant_tuple_body(self):
        src = "fun f(n, p: (int, bool)) = [i <- [1..n]: p]"
        assert allthree(src, "f", [2, (4, True)]) == [(4, True), (4, True)]


class TestTuplesDeep:
    def test_tuple_frames_at_depth_two(self):
        src = "fun f(n) = [a <- [1..n]: [b <- [1..a]: (a, b, a * b)]]"
        got = allthree(src, "f", [3])
        want = [[(a, b, a * b) for b in range(1, a + 1)] for a in range(1, 4)]
        assert got == want

    def test_tuple_projection_at_depth_two(self):
        src = ("fun f(n) = [a <- [1..n]: [b <- [1..a]:"
               " let p = (a + b, a - b) in p.1 * p.2]]")
        got = allthree(src, "f", [3])
        want = [[(a + b) * (a - b) for b in range(1, a + 1)]
                for a in range(1, 4)]
        assert got == want

    def test_tuple_of_sequences_in_frame(self):
        src = "fun f(n) = [a <- [1..n]: ([1..a], a)]"
        assert allthree(src, "f", [2]) == [([1], 1), ([1, 2], 2)]

    def test_nested_tuple_in_frame(self):
        src = "fun f(v) = [x <- v: (x, (x * 2, x > 0))]"
        assert allthree(src, "f", [[1, -1]]) == \
            [(1, (2, True)), (-1, (-2, False))]

    def test_seq_of_tuple_elements_indexed(self):
        src = ("fun f(rows: seq(seq((int, int)))) ="
               " [r <- rows: [e <- r: e.1 + e.2]]")
        assert allthree(src, "f", [[[(1, 2)], [(3, 4), (5, 6)]]]) == \
            [[3], [7, 11]]


class TestRecursionDeep:
    def test_recursive_fn_under_two_iterators(self):
        src = """
            fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
            fun f(n) = [a <- [1..n]: [b <- [1..a]: fact(b)]]
        """
        import math
        got = allthree(src, "f", [4])
        want = [[math.factorial(b) for b in range(1, a + 1)]
                for a in range(1, 5)]
        assert got == want

    def test_mutual_recursion_in_frame(self):
        src = """
            fun isEven(n) = if n == 0 then true else isOdd(n - 1)
            fun isOdd(n) = if n == 0 then false else isEven(n - 1)
            fun f(v) = [x <- v: isEven(x)]
        """
        assert allthree(src, "f", [[0, 1, 2, 7, 10]]) == \
            [True, False, True, False, True]

    def test_recursion_producing_nested_sequences(self):
        src = """
            fun splits(n) = if n <= 0 then [] else concat(splits(n-1), [[1..n]])
            fun f(v) = [x <- v: splits(x)]
        """
        got = allthree(src, "f", [[2, 0, 3]])
        assert got == [[[1], [1, 2]], [], [[1], [1, 2], [1, 2, 3]]]

    def test_ackermann_small_in_frame(self):
        src = """
            fun ack(m, n) =
              if m == 0 then n + 1
              else if n == 0 then ack(m - 1, 1)
              else ack(m - 1, ack(m, n - 1))
            fun f(v) = [x <- v: ack(2, x)]
        """
        assert allthree(src, "f", [[0, 1, 2, 3]]) == [3, 5, 7, 9]


class TestGroupDispatchDeep:
    def test_function_frame_under_two_iterators(self):
        src = ("fun f(n) = [a <- [1..n]: [b <- [1..a]:"
               " (if odd(b) then neg else abs_)(a * b)]]")
        got = allthree(src, "f", [3])
        want = [[-(a * b) if b % 2 else a * b for b in range(1, a + 1)]
                for a in range(1, 4)]
        assert got == want

    def test_user_functions_in_frame_at_depth_two(self):
        src = """
            fun twice(x) = 2 * x
            fun thrice(x) = 3 * x
            fun f(n) = [a <- [1..n]: [b <- [1..a]:
                (if even(a + b) then twice else thrice)(b)]]
        """
        got = allthree(src, "f", [3])
        want = [[(2 if (a + b) % 2 == 0 else 3) * b
                 for b in range(1, a + 1)] for a in range(1, 4)]
        assert got == want

    def test_reduce_with_lambda_in_frame(self):
        src = "fun f(vv) = [v <- vv: reduce(fn(a, b) => a * 10 + b, v)]"
        got = allthree(src, "f", [[[1, 2], [3], [4, 5, 6, 7]]])
        ref = compile_program(src).run("f", [[[1, 2], [3], [4, 5, 6, 7]]],
                                       backend="interp")
        assert got == ref


class TestRaggedStress:
    def test_random_ragged_depth3(self):
        rng = random.Random(99)
        vvv = [[[rng.randrange(10) for _ in range(rng.randrange(4))]
                for _ in range(rng.randrange(4))]
               for _ in range(15)]
        src = "fun f(x) = [a <- x: [b <- a: [c <- b: c + 1]]]"
        got = allthree(src, "f", [vvv],
                       types=["seq(seq(seq(int)))"])
        want = [[[c + 1 for c in b] for b in a] for a in vvv]
        assert got == want

    def test_sum_over_ragged_depth3(self):
        rng = random.Random(7)
        vvv = [[[rng.randrange(10) for _ in range(rng.randrange(5))]
                for _ in range(rng.randrange(5))]
               for _ in range(10)]
        src = "fun f(x) = [a <- x: sum([b <- a: sum(b)])]"
        got = allthree(src, "f", [vvv], types=["seq(seq(seq(int)))"])
        assert got == [sum(sum(b) for b in a) for a in vvv]

    def test_flatten_of_flatten(self):
        src = "fun f(x) = flatten(flatten(x))"
        v = [[[1, 2], []], [[3]], []]
        assert allthree(src, "f", [v], types=["seq(seq(seq(int)))"]) == \
            [1, 2, 3]

    def test_length_pyramid(self):
        src = "fun f(x) = [a <- x: [b <- a: #b]]"
        v = [[[1], [2, 3]], [[]], []]
        assert allthree(src, "f", [v], types=["seq(seq(seq(int)))"]) == \
            [[1, 2], [0], []]
