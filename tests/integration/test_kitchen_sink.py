"""Kitchen-sink programs combining every feature at once, run under every
option combination — the final line of defence against feature
interactions."""

import itertools
import random

import pytest

from repro import TransformOptions, compile_program

#: every on/off combination of the independent optimization switches
OPTION_GRID = [
    TransformOptions(shared_seq_index=s, simplify=p, fuse=f,
                     reduce_to_native=r)
    for s, p, f, r in itertools.product([True, False], repeat=4)
]


SINK = """
fun qsort(s) =
  if #s <= 1 then s
  else let p = s[(#s + 1) div 2],
           parts = [q <- [[x <- s | x < p: x], [x <- s | x > p: x]]: qsort(q)]
       in concat(concat(parts[1], [x <- s | x == p: x]), parts[2])

fun stats(v) = (sum(v), maxval(concat(v, [0])), #v)

fun weird(vv, t) =
  [v <- vv:
     let s = qsort(v),
         st = stats(s)
     in if st.3 == 0 then (0, 0 - 1)
        else (st.1 * 2 + t, (if odd(st.2) then neg else abs_)(st.2))]
"""


def oracle(vv, t):
    out = []
    for v in vv:
        s = sorted(v)
        total, mx, n = sum(s), max(s + [0]), len(s)
        if n == 0:
            out.append((0, -1))
        else:
            out.append((total * 2 + t, -mx if mx % 2 else abs(mx)))
    return out


class TestKitchenSink:
    @pytest.mark.parametrize("opts", OPTION_GRID,
                             ids=[f"s{o.shared_seq_index:d}p{o.simplify:d}"
                                  f"f{o.fuse:d}r{o.reduce_to_native:d}"
                                  for o in OPTION_GRID])
    def test_all_option_combinations(self, opts):
        prog = compile_program(SINK, options=opts)
        rng = random.Random(8)
        vv = [[rng.randrange(50) for _ in range(rng.randrange(0, 9))]
              for _ in range(10)]
        want = oracle(vv, 7)
        assert prog.run("weird", [vv, 7], types=["seq(seq(int))", "int"]) == want
        assert prog.run("weird", [vv, 7], backend="vcode",
                        types=["seq(seq(int))", "int"]) == want

    def test_matches_interpreter(self):
        prog = compile_program(SINK)
        rng = random.Random(9)
        vv = [[rng.randrange(99) for _ in range(rng.randrange(0, 12))]
              for _ in range(14)]
        ty = ["seq(seq(int))", "int"]
        assert prog.run("weird", [vv, 3], types=ty) == \
            prog.run("weird", [vv, 3], backend="interp", types=ty) == \
            oracle(vv, 3)


FLOATS_AND_FUNS = """
fun normalize(v: seq(float)) =
  let total = sum(v)
  in if total == 0.0 then v else [x <- v: fdiv(x, total)]

fun table(v: seq(float)) = [f <- [sum, maxval, minval]: f(v)]

fun pipeline(vv: seq(seq(float))) =
  [v <- vv: if #v == 0 then 0.0 else sum(normalize(v))]
"""


class TestFloatsAndFunctionFrames:
    def test_pipeline(self):
        prog = compile_program(FLOATS_AND_FUNS)
        vv = [[1.0, 3.0], [], [2.5]]
        got = prog.run_all("pipeline", [vv], types=["seq(seq(float))"])
        assert got[1] == 0.0
        assert abs(got[0] - 1.0) < 1e-12 and got[2] == 1.0

    def test_float_function_table(self):
        prog = compile_program(FLOATS_AND_FUNS)
        got = prog.run_all("table", [[2.0, 8.0, 4.0]])
        assert got == [14.0, 8.0, 2.0]


SEGSHARED_TUPLES = """
fun lookup_rows(rows: seq(seq((int, int))), q: seq(seq(int))) =
  [k <- [1..#rows]:
     [i <- q[k]: rows[k][i].2]]
"""


class TestSegsharedWithTuples:
    def test_tuple_elements_through_segmented_gather(self):
        prog = compile_program(SEGSHARED_TUPLES)
        rows = [[(1, 10), (2, 20)], [(9, 90)]]
        q = [[2, 1, 2], [1]]
        assert prog.run_all("lookup_rows", [rows, q]) == [[20, 10, 20], [90]]


class TestEverythingAtDepthThree:
    def test_sorting_rows_of_rows(self):
        src = """
            fun f(www: seq(seq(seq(int)))) =
              [ww <- www: [w <- ww: sort(w)]]
        """
        prog = compile_program(src)
        rng = random.Random(12)
        www = [[[rng.randrange(30) for _ in range(rng.randrange(5))]
                for _ in range(rng.randrange(4))]
               for _ in range(6)]
        want = [[sorted(w) for w in ww] for ww in www]
        assert prog.run_all("f", [www], types=["seq(seq(seq(int)))"]) == want
