"""Documentation hygiene: every relative markdown link resolves, and the
cross-link structure the docs promise actually exists."""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_check_links():
    spec = importlib.util.spec_from_file_location(
        "check_links", REPO_ROOT / "tools" / "check_links.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_no_broken_relative_links():
    mod = _load_check_links()
    assert mod.find_broken(REPO_ROOT) == []


def test_checker_detects_broken_links(tmp_path):
    mod = _load_check_links()
    (tmp_path / "a.md").write_text("see [b](b.md) and [gone](missing.md)")
    (tmp_path / "b.md").write_text("see [external](https://example.com) "
                                   "and [anchor](#here)")
    assert mod.find_broken(tmp_path) == [("a.md", "missing.md")]


def test_checker_strips_anchor_suffixes(tmp_path):
    mod = _load_check_links()
    (tmp_path / "a.md").write_text("[ok](b.md#section) [bad](c.md#section)")
    (tmp_path / "b.md").write_text("# section")
    assert mod.find_broken(tmp_path) == [("a.md", "c.md#section")]


def test_docs_cross_link_structure():
    docs = REPO_ROOT / "docs"
    readme = (REPO_ROOT / "README.md").read_text()
    assert "docs/PIPELINE.md" in readme
    assert "docs/OBSERVABILITY.md" in readme
    internals = (docs / "INTERNALS.md").read_text()
    assert "PIPELINE.md" in internals and "OBSERVABILITY.md" in internals
    pipeline = (docs / "PIPELINE.md").read_text()
    assert "INTERNALS.md" in pipeline and "OBSERVABILITY.md" in pipeline


def test_observability_doc_covers_every_counter_field():
    text = (REPO_ROOT / "docs" / "OBSERVABILITY.md").read_text()
    for field in ("calls", "elements", "bytes_moved", "max_frame_len"):
        assert f"`{field}`" in text, f"counter field {field} undocumented"
    for layer in ("kernel", "segment", "vm"):
        assert f"`{layer}`" in text, f"layer {layer} undocumented"
