"""Tests for the Float scalar extension (section 2: "Extension of this last
restriction should be relatively simple").

Cross-backend float results must agree *bitwise*: both back ends use IEEE
double operations applied in the same order (the segmented sum/scan kernels
use sequential cumsum precisely to preserve the interpreter's left-to-right
rounding)."""

import math

import pytest

from repro import ReproError, compile_program
from repro.lang.types import FLOAT, TSeq


def both(src, fname, args, types=None):
    return compile_program(src).run_all(fname, args, types)


class TestLiteralsAndTypes:
    def test_float_literal(self):
        assert both("fun f() = 1.5", "f", []) == 1.5

    def test_exponent_literal(self):
        assert both("fun f() = 2.5e2", "f", []) == 250.0

    def test_negative_exponent(self):
        assert both("fun f() = 1.0e-3", "f", []) == 0.001

    def test_annotation(self):
        prog = compile_program("fun f(x: float) = x")
        assert prog.run("f", [2.5]) == 2.5

    def test_inference_from_literal(self):
        prog = compile_program("fun f(x) = x + 0.5")
        assert prog.typed.schemes["f"].params[0] == FLOAT

    def test_int_float_mix_rejected(self):
        from repro.errors import TypeCheckError
        with pytest.raises(TypeCheckError):
            compile_program("fun f() = 1 + 1.5")

    def test_int_arg_for_float_param_rejected(self):
        prog = compile_program("fun f(x: float) = x")
        with pytest.raises(ReproError):
            prog.run("f", [1])

    def test_div_stays_integral(self):
        from repro.errors import TypeCheckError
        with pytest.raises(TypeCheckError):
            compile_program("fun f(x: float, y: float) = x div y")


class TestArithmetic:
    @pytest.mark.parametrize("src,args,want", [
        ("fun f(a: float, b: float) = a + b", [1.5, 2.25], 3.75),
        ("fun f(a: float, b: float) = a * b", [1.5, 2.0], 3.0),
        ("fun f(a: float, b: float) = a - b", [1.0, 2.5], -1.5),
        ("fun f(a: float, b: float) = fdiv(a, b)", [7.0, 2.0], 3.5),
        ("fun f(a: float) = -a", [1.5], -1.5),
        ("fun f(a: float) = abs_(a)", [-2.5], 2.5),
        ("fun f(a: float, b: float) = max2(a, b)", [1.5, 2.5], 2.5),
        ("fun f(a: float, b: float) = a < b", [1.5, 2.5], True),
        ("fun f(a: float, b: float) = a == b", [1.5, 1.5], True),
    ])
    def test_scalar_ops(self, src, args, want):
        assert both(src, "f", args) == want

    def test_sqrt(self):
        assert both("fun f(x: float) = sqrt_(x)", "f", [2.0]) == math.sqrt(2.0)

    def test_sqrt_negative_errors(self):
        prog = compile_program("fun f(x: float) = sqrt_(x)")
        for backend in ("interp", "vector"):
            with pytest.raises(ReproError):
                prog.run("f", [-1.0], backend=backend)

    def test_fdiv_by_zero_errors(self):
        prog = compile_program("fun f(x: float) = fdiv(x, 0.0)")
        for backend in ("interp", "vector"):
            with pytest.raises(ReproError):
                prog.run("f", [1.0], backend=backend)


class TestConversions:
    def test_real(self):
        assert both("fun f(n) = real(n)", "f", [7]) == 7.0

    def test_trunc(self):
        assert both("fun f(x: float) = trunc_(x)", "f", [2.9]) == 2
        assert both("fun f(x: float) = trunc_(x)", "f", [-2.9]) == -2

    def test_round_half_even(self):
        assert both("fun f(x: float) = round_(x)", "f", [2.5]) == 2
        assert both("fun f(x: float) = round_(x)", "f", [3.5]) == 4

    def test_floor_ceil(self):
        assert both("fun f(x: float) = floor_(x)", "f", [-2.1]) == -3
        assert both("fun f(x: float) = ceil_(x)", "f", [-2.1]) == -2


class TestFloatFrames:
    def test_elementwise_in_frame(self):
        src = "fun f(v: seq(float)) = [x <- v: x * x + 1.0]"
        assert both(src, "f", [[1.5, 2.0]]) == [3.25, 5.0]

    def test_sum_preserves_rounding_order(self):
        # left-to-right summation must match across back ends bit for bit
        src = "fun f(v: seq(float)) = sum(v)"
        vals = [0.1] * 17 + [1e16, 1.0, -1e16]
        assert both(src, "f", [vals]) == sum(vals)

    def test_sum_empty_float(self):
        # the empty list's type is not inferrable from the value: pass it
        assert both("fun f(v: seq(float)) = sum(v)", "f", [[]],
                    types=["seq(float)"]) == 0

    def test_scans(self):
        src = "fun f(v: seq(float)) = plus_scan(v)"
        got = both(src, "f", [[1.5, 2.5, 3.0]])
        assert got == [0, 1.5, 4.0]
        src = "fun f(v: seq(float)) = max_scan(v)"
        assert both(src, "f", [[1.5, 0.5, 2.5]]) == [1.5, 1.5, 2.5]

    def test_maxval_minval(self):
        src = "fun f(v: seq(float)) = (maxval(v), minval(v))"
        assert both(src, "f", [[2.5, -1.5, 0.0]]) == (2.5, -1.5)

    def test_conditional_on_floats(self):
        src = "fun f(v: seq(float)) = [x <- v: if x < 0.0 then -x else x]"
        assert both(src, "f", [[-1.5, 2.5, -0.25]]) == [1.5, 2.5, 0.25]

    def test_nested_float_frames(self):
        src = "fun f(vv: seq(seq(float))) = [v <- vv: [x <- v: x * 2.0]]"
        assert both(src, "f", [[[1.5], [2.5, 3.5]]]) == [[3.0], [5.0, 7.0]]

    def test_float_rank_sort(self):
        src = "fun f(v: seq(float)) = sort(v)"
        v = [2.5, -1.0, 0.25, -1.0]
        assert both(src, "f", [v]) == sorted(v)

    def test_float_tuples(self):
        src = ("fun f(v: seq((float, float))) ="
               " [p <- v: sqrt_(p.1 * p.1 + p.2 * p.2)]")
        assert both(src, "f", [[(3.0, 4.0), (0.0, 1.0)]]) == [5.0, 1.0]

    def test_distances_recursion(self):
        src = """
            fun fpow(b: float, e) = if e == 0 then 1.0 else b * fpow(b, e - 1)
            fun f(v: seq(float)) = [x <- v: fpow(x, 3)]
        """
        assert both(src, "f", [[2.0, 1.5]]) == [8.0, 3.375]

    def test_value_inference(self):
        prog = compile_program("fun f(v) = [x <- v: x + 0.0]")
        assert prog.run("f", [[1.5, 2.5]]) == [1.5, 2.5]

    def test_heterogeneous_rejected(self):
        prog = compile_program("fun f(v) = v")
        with pytest.raises(ReproError):
            prog.run("f", [[1, 2.5]])

    def test_dotp_float(self):
        src = "fun fdot(a: seq(float), b: seq(float)) = sum([i <- [1..#a]: a[i] * b[i]])"
        assert both(src, "fdot", [[1.5, 2.0], [2.0, 0.5]]) == 4.0
