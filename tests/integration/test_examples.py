"""Every example script must run clean end to end (small sizes)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CASES = [
    ("quickstart.py", ["4"]),
    ("quicksort.py", ["24"]),
    ("spmv.py", ["16"]),
    ("primes.py", ["40"]),
    ("convex_hull.py", ["60"]),
    ("higher_order.py", []),
    ("nbody.py", ["10", "2"]),
    ("histogram.py", ["150"]),
    ("scans.py", []),
    ("custom_pass.py", []),
]


@pytest.mark.parametrize("script,args", CASES)
def test_example_runs(script, args):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), f"{script} produced no output"


def test_examples_all_listed():
    found = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {s for s, _ in CASES}
    assert found == covered, f"untested examples: {found - covered}"
