"""Hypothesis properties for the Float extension and the segmented shared
index, on randomly generated ragged data."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import compile_program

_SETTINGS = dict(max_examples=25, deadline=None,
                 suppress_health_check=list(HealthCheck))

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
float_rows = st.lists(st.lists(floats, max_size=6), max_size=5)

_FPROG = compile_program("""
    fun rowsums(vv: seq(seq(float))) = [v <- vv: sum(v)]
    fun scaled(vv: seq(seq(float))) = [v <- vv: [x <- v: x * 2.0 - 1.0]]
    fun scans(vv: seq(seq(float))) = [v <- vv: plus_scan(v)]
    fun sorts(vv: seq(seq(float))) = [v <- vv: sort(v)]
""")

_TY = ["seq(seq(float))"]


class TestFloatFrameProperties:
    @settings(**_SETTINGS)
    @given(float_rows)
    def test_rowsums_bitwise(self, vv):
        assert _FPROG.run("rowsums", [vv], types=_TY) == \
            _FPROG.run("rowsums", [vv], backend="interp", types=_TY)

    @settings(**_SETTINGS)
    @given(float_rows)
    def test_elementwise_bitwise(self, vv):
        assert _FPROG.run("scaled", [vv], types=_TY) == \
            _FPROG.run("scaled", [vv], backend="interp", types=_TY)

    @settings(**_SETTINGS)
    @given(float_rows)
    def test_scans_bitwise(self, vv):
        assert _FPROG.run("scans", [vv], types=_TY) == \
            _FPROG.run("scans", [vv], backend="interp", types=_TY)

    @settings(**_SETTINGS)
    @given(float_rows)
    def test_sorts(self, vv):
        assert _FPROG.run("sorts", [vv], types=_TY) == \
            [sorted(v) for v in vv]


_GPROG = compile_program(
    "fun g(vv: seq(seq(int))) = [v <- vv: [i <- [1..#v]: v[#v - i + 1] + #v]]")


class TestSegsharedProperties:
    @settings(**_SETTINGS)
    @given(st.lists(st.lists(st.integers(-99, 99), max_size=7), max_size=6))
    def test_reverse_plus_len(self, vv):
        got = _GPROG.run("g", [vv], types=["seq(seq(int))"])
        want = [[v[len(v) - i - 1] + len(v) for i in range(len(v))]
                for v in vv]
        assert got == want

    @settings(**_SETTINGS)
    @given(st.lists(st.lists(st.integers(-99, 99), max_size=7), max_size=6))
    def test_matches_interpreter(self, vv):
        ty = ["seq(seq(int))"]
        assert _GPROG.run("g", [vv], types=ty) == \
            _GPROG.run("g", [vv], backend="interp", types=ty)
