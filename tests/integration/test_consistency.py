"""Cross-cutting consistency checks: every surface primitive must be fully
wired through every layer (interpreter, kernels, cost model, op classes,
documentation), and the three back ends must expose the same surface."""

from pathlib import Path


from repro.interp.cost import prim_work
from repro.interp.interpreter import PRIM_IMPLS
from repro.lang.builtins import SURFACE_BUILTINS, all_builtins, get_builtin
from repro.machine.opclasses import DEFAULT_FACTORS, classify
from repro.vector.ops import KERNELS

DOCS = Path(__file__).resolve().parents[2] / "docs"


class TestPrimitiveWiring:
    def test_every_surface_builtin_has_interpreter_impl(self):
        missing = SURFACE_BUILTINS - set(PRIM_IMPLS)
        assert not missing, missing

    def test_every_surface_builtin_has_depth1_kernel(self):
        missing = SURFACE_BUILTINS - set(KERNELS)
        assert not missing, missing

    def test_every_surface_builtin_classified(self):
        for name in SURFACE_BUILTINS:
            assert classify(name) in DEFAULT_FACTORS, name

    def test_cost_model_total(self):
        # prim_work must not crash for any primitive with plausible args
        samples = {
            "length": [[1, 2]], "range": [1, 5], "range1": [4],
            "seq_index": [[1], 1], "seq_update": [[1], 1, 2],
            "restrict": [[1], [True]], "combine": [[True], [1], []],
            "dist": [1, 3], "concat": [[1], [2]], "flatten": [[[1]]],
        }
        from repro.interp.interpreter import PRIM_IMPLS as P
        for name in SURFACE_BUILTINS:
            args = samples.get(name)
            if args is None:
                continue
            res = P[name](*args)
            assert prim_work(name, args, res) >= 1

    def test_no_interp_impl_without_builtin_entry(self):
        # implementations must not drift ahead of the declared surface
        extra = set(PRIM_IMPLS) - set(all_builtins())
        assert not extra, extra

    def test_elementwise_flag_matches_kernel_behavior(self):
        # all 'elementwise' builtins classify as elementwise ops
        for name, b in all_builtins().items():
            if b.elementwise and name in KERNELS:
                assert classify(name) == "elementwise", name


class TestSurfaceDocumentation:
    def test_language_reference_mentions_every_builtin(self):
        text = (DOCS / "LANGUAGE.md").read_text()
        display = {"and_": "and", "or_": "or", "not_": "not", "abs_": "abs",
                   "eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                   "gt": ">", "ge": ">=", "add": "+", "sub": "-",
                   "mul": "*", "neg": "-", "seq_index": "seq_index",
                   "sqrt_": "sqrt_", "trunc_": "trunc_", "round_": "round_",
                   "floor_": "floor_", "ceil_": "ceil_"}
        for name in sorted(SURFACE_BUILTINS):
            shown = display.get(name, name)
            assert shown in text, f"{name} undocumented in LANGUAGE.md"

    def test_prelude_functions_documented(self):
        text = (DOCS / "LANGUAGE.md").read_text()
        from repro.lang.prelude import prelude_program
        for d in prelude_program():
            assert d.name in text, f"prelude {d.name} undocumented"


class TestBuiltinMetadata:
    def test_schemes_are_functions(self):
        for name, b in all_builtins().items():
            t = b.fresh_type()
            from repro.lang.types import TFun
            assert isinstance(t, TFun), name

    def test_fresh_types_are_fresh(self):
        b = get_builtin("seq_index")
        t1, t2 = b.fresh_type(), b.fresh_type()
        # polymorphic schemes must not share variables across instantiations
        from repro.lang.types import type_vars
        assert not (type_vars(t1) & type_vars(t2))

    def test_shared_args_only_on_indexing(self):
        for name, b in all_builtins().items():
            if b.shared_args:
                assert name in ("seq_index", "seq_update"), name
