"""Error-parity matrix: every *runtime* error class must be raised by all
three back ends, and every *static* error must be raised before any back
end runs.  (Exact messages may differ; the error class and the refusal to
produce a wrong answer are the contract.)"""

import pytest

from repro import ReproError, compile_program
from repro.errors import ParseError, TypeCheckError

RUNTIME_CASES = [
    # (description, source, entry, args)
    ("index above range", "fun f(v) = v[#v + 1]", "f", [[1, 2]]),
    ("index zero", "fun f(v) = v[0]", "f", [[1, 2]]),
    ("index into empty", "fun f(v) = v[1]", "f", [[]]),
    ("index inside frame", "fun f(v) = [x <- v: v[x]]", "f", [[5]]),
    ("div by zero", "fun f(a, b) = a div b", "f", [1, 0]),
    ("mod by zero", "fun f(a, b) = a mod b", "f", [1, 0]),
    ("div by zero in frame", "fun f(v) = [x <- v: 10 div x]", "f", [[2, 0]]),
    ("restrict length mismatch",
     "fun f(v, m) = restrict(v, m)", "f", [[1, 2], [True]]),
    ("combine length mismatch",
     "fun f(m, v, u) = combine(m, v, u)", "f", [[True], [1], [2]]),
    ("dist negative count", "fun f(c, r) = dist(c, r)", "f", [1, -2]),
    ("update out of range",
     "fun f(v) = seq_update(v, 5, 0)", "f", [[1]]),
    ("maxval of empty", "fun f(v) = maxval(v)", "f", [[]]),
    ("minval of empty", "fun f(v) = minval(v)", "f", [[]]),
    ("reduce of empty", "fun f(v) = reduce(add, v)", "f", [[]]),
    ("permute bad index", "fun f(v, i) = permute(v, i)", "f", [[1, 2], [1, 5]]),
    ("permute duplicate", "fun f(v, i) = permute(v, i)", "f", [[1, 2], [2, 2]]),
]


class TestRuntimeErrorParity:
    @pytest.mark.parametrize("desc,src,entry,args",
                             RUNTIME_CASES,
                             ids=[c[0] for c in RUNTIME_CASES])
    def test_all_backends_raise(self, desc, src, entry, args):
        prog = compile_program(src)
        for backend in ("interp", "vector", "vcode"):
            with pytest.raises(ReproError):
                prog.run(entry, args, backend=backend)


STATIC_CASES = [
    ("unbound variable", "fun f(x) = y"),
    ("arity mismatch", "fun g(x) = x fun f(x) = g(x, x)"),
    ("branch type mismatch", "fun f(b) = if b then 1 else true"),
    ("condition not bool", "fun f(x) = if x + 1 then 1 else 2"),
    ("heterogeneous literal", "fun f() = [1, true]"),
    ("iterator over scalar", "fun f(x) = [i <- x + 1: i]"),
    ("eq on sequences", "fun f(v) = v == [1]"),
    ("filter not bool", "fun f(v) = [x <- v | x + 1: x]"),
    ("calling non-function", "fun f(x) = (x + 1)(2)"),
    ("capturing lambda", "fun f(a, v) = [x <- v: (fn(y) => y + a)(x)]"),
]


class TestStaticErrors:
    @pytest.mark.parametrize("desc,src", STATIC_CASES,
                             ids=[c[0] for c in STATIC_CASES])
    def test_rejected_at_compile_time(self, desc, src):
        with pytest.raises(TypeCheckError):
            prog = compile_program(src)
            # schemes are inferred eagerly at compile time
            assert prog is None  # pragma: no cover


PARSE_CASES = [
    "fun f(x) = ",
    "fun f x) = x",
    "fun f(x) = [x <-]",
    "fun f(x) = let in x",
    "fun = 1",
    "1 + 2",           # top level must be definitions
]


class TestParseErrors:
    @pytest.mark.parametrize("src", PARSE_CASES)
    def test_rejected(self, src):
        with pytest.raises(ParseError):
            compile_program(src)


class TestNoWrongAnswers:
    """Errors must not be swallowed into wrong values by vectorization:
    a partial failure inside a frame poisons the whole computation."""

    def test_error_in_one_element_fails_whole_frame(self):
        prog = compile_program("fun f(v) = [x <- v: 100 div x]")
        # interp evaluates left to right; vector evaluates all at once —
        # both must fail even though some elements are fine
        for backend in ("interp", "vector"):
            with pytest.raises(ReproError):
                prog.run("f", [[1, 2, 0, 4]], backend=backend)

    def test_untaken_branch_errors_do_not_fire(self):
        # but errors in *untaken* conditional branches must NOT fire
        prog = compile_program(
            "fun f(v) = [x <- v: if x == 0 then 0 else 100 div x]")
        assert prog.run_all("f", [[1, 0, 4]]) == [100, 0, 25]
