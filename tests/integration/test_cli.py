"""Tests for the command-line interface (in-process via repro.cli.main)."""

import pytest

from repro.cli import main

DEMO = """
fun sqs(n) = [j <- [1..n]: j * j]
fun main(k) = [i <- [1..k]: sqs(i)]
"""


@pytest.fixture()
def demo(tmp_path):
    p = tmp_path / "demo.p"
    p.write_text(DEMO)
    return str(p)


def run_cli(capsys, *argv):
    rc = main(list(argv))
    out = capsys.readouterr().out
    return rc, out


class TestRun:
    def test_run_default_backend(self, demo, capsys):
        rc, out = run_cli(capsys, "run", demo, "-a", "3")
        assert rc == 0
        assert out.strip() == "[[1], [1, 4], [1, 4, 9]]"

    @pytest.mark.parametrize("backend", ["vector", "interp", "vcode"])
    def test_run_backends(self, demo, capsys, backend):
        rc, out = run_cli(capsys, "run", demo, "-a", "2", "--backend", backend)
        assert rc == 0 and out.strip() == "[[1], [1, 4]]"

    def test_run_named_entry(self, demo, capsys):
        rc, out = run_cli(capsys, "run", demo, "-e", "sqs", "-a", "4")
        assert rc == 0 and out.strip() == "[1, 4, 9, 16]"

    def test_run_list_argument(self, tmp_path, capsys):
        f = tmp_path / "s.p"
        f.write_text("fun main(v) = sort(v)")
        rc, out = run_cli(capsys, "run", str(f), "-a", "[3, 1, 2]")
        assert rc == 0 and out.strip() == "[1, 2, 3]"

    def test_run_with_types(self, tmp_path, capsys):
        f = tmp_path / "s.p"
        f.write_text("fun main(v) = #v")
        rc, out = run_cli(capsys, "run", str(f), "-a", "[]", "-t", "seq(bool)")
        assert rc == 0 and out.strip() == "0"

    def test_bad_literal(self, demo):
        with pytest.raises(SystemExit):
            main(["run", demo, "-a", "not a literal ["])

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["run", "/nonexistent.p", "-a", "1"])

    def test_runtime_error_returns_1(self, tmp_path, capsys):
        f = tmp_path / "e.p"
        f.write_text("fun main(v) = v[99]")
        rc = main(["run", str(f), "-a", "[1]"])
        assert rc == 1


class TestEval:
    def test_eval(self, capsys):
        rc, out = run_cli(capsys, "eval", "sum([1 .. 10])")
        assert rc == 0 and out.strip() == "55"

    def test_eval_interp(self, capsys):
        rc, out = run_cli(capsys, "eval", "reduce(max2, [3, 9, 4])",
                          "--backend", "interp")
        assert rc == 0 and out.strip() == "9"


class TestInspection:
    def test_transform_by_types(self, demo, capsys):
        rc, out = run_cli(capsys, "transform", demo, "-t", "int")
        assert rc == 0
        assert "sqs^1" in out and "range1" in out

    def test_transform_by_args(self, demo, capsys):
        rc, out = run_cli(capsys, "transform", demo, "-a", "3")
        assert rc == 0 and "sqs^1" in out

    def test_emit_c(self, demo, capsys):
        rc, out = run_cli(capsys, "emit-c", demo, "-t", "int")
        assert rc == 0 and '#include "cvl.h"' in out

    def test_trace(self, demo, capsys):
        rc, out = run_cli(capsys, "trace", demo, "-t", "int")
        assert rc == 0 and "R2c" in out

    def test_vcode(self, demo, capsys):
        rc, out = run_cli(capsys, "vcode", demo, "-t", "int")
        assert rc == 0 and "function main" in out and "ret" in out


class TestSimulateAndMeasure:
    def test_simulate(self, demo, capsys):
        rc, out = run_cli(capsys, "simulate", demo, "-a", "10", "-p", "1,8")
        assert rc == 0
        assert "P=1" in out and "P=8" in out and "result:" in out

    def test_measure(self, demo, capsys):
        rc, out = run_cli(capsys, "measure", demo, "-a", "5")
        assert rc == 0
        assert "work=" in out and "span=" in out
