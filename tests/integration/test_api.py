"""Tests for the public API surface (repro.api / repro.__init__)."""

import pytest

from repro import FunVal, ReproError, TransformOptions, \
    compile_program, run
from repro.errors import EvalError, TypeCheckError
from repro.lang.types import BOOL, INT, TSeq


class TestOneShotRun:
    def test_run(self):
        assert run("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [4]) == \
            [1, 4, 9, 16]

    def test_run_backend(self):
        assert run("fun f(x) = x + 1", "f", [1], backend="interp") == 2

    def test_run_types(self):
        assert run("fun f(v) = #v", "f", [[]], types=["seq(bool)"]) == 0


class TestEntryTypes:
    def test_inferred_from_values(self):
        prog = compile_program("fun f(v) = v")
        ts = prog.entry_types("f", [[1, 2]])
        assert ts == (TSeq(INT),)

    def test_inferred_ragged_with_empty_rows(self):
        prog = compile_program("fun f(v) = v")
        ts = prog.entry_types("f", [[[], [True]]])
        assert ts == (TSeq(TSeq(BOOL)),)

    def test_explicit_validation(self):
        prog = compile_program("fun f(v) = v")
        with pytest.raises(EvalError):
            prog.entry_types("f", [[1, True]])
        with pytest.raises(EvalError):
            prog.entry_types("f", [[1]], types=["seq(bool)"])

    def test_length_mismatch(self):
        prog = compile_program("fun f(v) = v")
        with pytest.raises(TypeCheckError):
            prog.entry_types("f", [[1]], types=["seq(int)", "int"])

    def test_function_arg_requires_types(self):
        prog = compile_program("fun ap(f, x) = f(x)")
        with pytest.raises(EvalError):
            prog.run("ap", [FunVal("neg"), 1])  # no types given


class TestPrepareCaching:
    def test_same_entry_reuses_transform(self):
        prog = compile_program("fun f(v) = [x <- v: x + 1]")
        m1, tp1 = prog.prepare("f", (TSeq(INT),))
        m2, tp2 = prog.prepare("f", (TSeq(INT),))
        assert m1 == m2 and tp1 is tp2

    def test_different_types_different_instances(self):
        prog = compile_program("fun f(x) = [x, x]")
        m1, _ = prog.prepare("f", (INT,))
        m2, _ = prog.prepare("f", (BOOL,))
        assert m1 != m2

    def test_unknown_entry(self):
        prog = compile_program("fun f(x) = x")
        with pytest.raises(TypeCheckError):
            prog.prepare("nosuch", (INT,))


class TestRunAll:
    def test_agreement_value_returned(self):
        prog = compile_program("fun f(n) = sum([1..n])")
        assert prog.run_all("f", [10]) == 55

    def test_user_function_as_entry_argument(self):
        prog = compile_program("""
            fun double(x) = 2 * x
            fun mapf(f, v) = [x <- v: f(x)]
        """)
        got = prog.run("mapf", [FunVal("double"), [1, 2, 3]],
                       types=["(int) -> int", "seq(int)"])
        assert got == [2, 4, 6]

    def test_prelude_function_as_entry_argument(self):
        prog = compile_program("fun mapf(f, v) = [x <- v: f(x)]")
        got = prog.run("mapf", [FunVal("odd"), [1, 2, 3]],
                       types=["(int) -> bool", "seq(int)"])
        assert got == [True, False, True]


class TestOptions:
    def test_options_respected(self):
        prog = compile_program(
            "fun gather(v, ix) = [i <- ix: v[i]]",
            options=TransformOptions(shared_seq_index=False))
        assert prog.run("gather", [[5, 6], [2, 1]]) == [6, 5]

    def test_no_prelude(self):
        compile_program("fun f(x) = x + 1", use_prelude=False)
        with pytest.raises(TypeCheckError):
            compile_program("fun f(v) = sort(v)", use_prelude=False) \
                .run("f", [[2, 1]])

    def test_user_shadows_prelude(self):
        prog = compile_program("fun reverse(v) = v")  # shadow: identity
        assert prog.run("reverse", [[1, 2]]) == [1, 2]


class TestInspectionAPIs:
    def test_transformed_source_is_parseable_text(self):
        prog = compile_program("fun f(v) = [x <- v: x * 2]")
        src = prog.transformed_source("f", [[1, 2]])
        assert "fun f(v)" in src and "<-" not in src  # no iterators remain

    def test_emit_c_nonempty(self):
        prog = compile_program("fun f(n) = [i <- [1..n]: i]")
        assert "vec_p f(" in prog.emit_c("f", ["int"])

    def test_vector_trace_result_and_ops(self):
        prog = compile_program("fun f(n) = sum([i <- [1..n]: i])")
        result, trace = prog.vector_trace("f", [100])
        assert result == 5050
        assert any(op == "sum" for op, _n in trace)

    def test_measure(self):
        prog = compile_program("fun f(n) = [i <- [1..n]: i]")
        val, cost = prog.measure("f", [10])
        assert val == list(range(1, 11))
        assert cost.work >= 10 and cost.span >= 1

    def test_trace_for(self):
        prog = compile_program("fun f(v) = [x <- v: x]",
                               options=TransformOptions(trace=True))
        tr = prog.trace_for("f", ["seq(int)"])
        assert tr.rules_fired()


class TestErrorSurface:
    def test_all_errors_are_repro_errors(self):
        cases = [
            lambda: compile_program("fun f(x ="),               # parse
            lambda: compile_program("fun f(x) = x + true"),      # type
            lambda: compile_program("fun f(v) = v[9]").run("f", [[1]]),
        ]
        for c in cases:
            with pytest.raises(ReproError):
                c()

    def test_unknown_backend(self):
        prog = compile_program("fun f(x) = x")
        with pytest.raises(ValueError):
            prog.run("f", [1], backend="quantum")
