"""Kernel-cache battery (repro.native.cache): thundering-herd compile
deduplication, corrupted-artifact eviction, and key invalidation on ABI /
toolchain / flag changes.

Every test uses a private cache directory (tmp_path) so runs never touch
the user's ``~/.cache/repro-native`` and never see each other's
artifacts.  Skipped entirely when the machine has no C compiler — the
no-toolchain contract is covered by test_fallback.py.
"""

import ctypes
import threading

import numpy as np
import pytest

from repro.native import cache as cache_mod
from repro.native import toolchain
from repro.native.cache import KernelCache, source_key
from repro.native.codegen import emit_fused_source

pytestmark = pytest.mark.skipif(not toolchain.available(),
                                reason="no C toolchain")

#: (a0 + a1) over int vectors — the smallest real fused kernel
TREE = ("prim", "add", (("arg", 0), ("arg", 1)))
ARGTYPES = [ctypes.c_void_p, ctypes.c_longlong, ctypes.c_void_p,
            ctypes.c_void_p]


def add_source() -> str:
    return emit_fused_source(TREE, ["int", "int"], [False, False],
                             name="__fused_test")


def run_add(kernel, a, b):
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    out = np.empty(a.size, dtype=np.int64)
    kernel.run(out.ctypes.data, a.size, a.ctypes.data, b.ctypes.data)
    return out.tolist()


def test_compile_load_run(tmp_path):
    cache = KernelCache(tmp_path)
    k = cache.get(add_source(), ARGTYPES)
    assert run_add(k, [1, 2, 3], [10, 20, 30]) == [11, 22, 33]
    assert k.so_path.exists() and k.c_path.exists()
    assert k.c_path.read_text() == add_source()   # exact source kept
    s = cache.stats()
    assert s["misses"] == 1 and s["compiles"] == 1 and s["hits"] == 0


def test_hits_never_recompile(tmp_path):
    cache = KernelCache(tmp_path)
    k1 = cache.get(add_source(), ARGTYPES)
    k2 = cache.get(add_source(), ARGTYPES)
    assert k1 is k2
    s = cache.stats()
    assert s["compiles"] == 1 and s["hits"] == 1


def test_disk_artifact_reused_across_instances(tmp_path):
    """A second cache (≈ a new process) loads the .so without invoking
    cc — the mtime of the artifact proves no rebuild happened."""
    KernelCache(tmp_path).get(add_source(), ARGTYPES)
    cache2 = KernelCache(tmp_path)
    k = cache2.get(add_source(), ARGTYPES)
    assert run_add(k, [5], [6]) == [11]
    assert cache2.stats()["compiles"] == 0


def test_thundering_herd_compiles_once(tmp_path):
    """N concurrent first requests for one key: exactly one cc run; every
    caller gets the owner's kernel."""
    cache = KernelCache(tmp_path)
    src = add_source()
    kernels: list = [None] * 16
    errors: list = []
    start = threading.Barrier(16)

    def worker(i):
        try:
            start.wait()
            kernels[i] = cache.get(src, ARGTYPES)
        except BaseException as e:  # pragma: no cover - diagnostic
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(16)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(60)
    assert not errors
    assert all(k is kernels[0] for k in kernels)
    s = cache.stats()
    assert s["compiles"] == 1
    assert s["misses"] == 1 and s["hits"] == 15


def test_corrupted_so_evicted_and_recompiled(tmp_path):
    """A truncated/garbage .so (crashed writer, wrong arch) found on disk
    is evicted and rebuilt — callers never see the corruption.  The
    garbage artifact is planted *before* any load: a loaded .so can only
    be replaced via os.replace (new inode), never scribbled in place."""
    src = add_source()
    key = source_key(src)
    tmp_path.mkdir(exist_ok=True)
    (tmp_path / f"{key}.so").write_bytes(b"not an ELF object")
    cache = KernelCache(tmp_path)
    k = cache.get(src, ARGTYPES)
    assert run_add(k, [1], [2]) == [3]
    s = cache.stats()
    assert s["evictions"] == 1 and s["compiles"] == 1


def test_abi_bump_invalidates_key(tmp_path, monkeypatch):
    """Bumping ABI_VERSION changes every key: old artifacts are simply
    never looked at again."""
    src = add_source()
    cache = KernelCache(tmp_path)
    k_old = cache.get(src, ARGTYPES)
    old_key = source_key(src)
    monkeypatch.setattr(cache_mod, "ABI_VERSION", cache_mod.ABI_VERSION + 1)
    new_key = source_key(src)
    assert new_key != old_key
    cache2 = KernelCache(tmp_path)
    k_new = cache2.get(src, ARGTYPES)
    assert k_new.key == new_key and k_old.key == old_key
    assert cache2.stats()["compiles"] == 1   # disk hit impossible
    assert k_old.so_path.exists()            # old artifact just ages out


def test_toolchain_id_part_of_key():
    src = add_source()
    assert source_key(src, "cc 1.0") != source_key(src, "cc 2.0")


def test_cflags_part_of_key(monkeypatch):
    src = add_source()
    before = source_key(src)
    monkeypatch.setattr(cache_mod, "CFLAGS", cache_mod.CFLAGS + ["-O3"])
    assert source_key(src) != before


def test_failed_compile_not_cached_and_retried(tmp_path):
    """A failing source raises for the owner and every waiter, but the
    failure is not cached: the next call attempts a fresh compile."""
    from repro.errors import NativeCompileError
    cache = KernelCache(tmp_path)
    bad = "void run(void) { this does not compile }"
    with pytest.raises(NativeCompileError):
        cache.get(bad, [])
    with pytest.raises(NativeCompileError):
        cache.get(bad, [])
    assert cache.stats()["misses"] == 2      # both calls became owners
