"""End-to-end behaviour of ``backend="native"`` (compiled fused C
kernels) and of the serve layer's vector→native tier promotion.  Results
must be indistinguishable from the vector back end — same values, same
errors — on every program."""

import pytest

from repro import ReproError, compile_program
from repro.errors import NativeCompileError
from repro.native import toolchain

pytestmark = pytest.mark.skipif(not toolchain.available(),
                                reason="no C toolchain")

PROGRAMS = [
    # int fused chain with the iteration shortcut
    ("fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]",
     "f", [list(range(-20, 80))]),
    # float arithmetic
    ("fun f(v: seq(float)) = [x <- v: x * x + x - 0.5]",
     "f", [[1.5, -2.25, 0.0, 8.0]]),
    # comparison result (bool output kind)
    ("fun f(v) = [x <- v: x * 2 > x + 3]", "f", [[0, 5, -5, 4]]),
    # nested sequence (segmented execution under the fused op)
    ("fun f(n) = [i <- [1..n]: [j <- [1..i]: i * j + i - j]]", "f", [6]),
    # reduction over a fused elementwise body
    ("fun f(v) = sum([x <- v: x * x + 1])", "f", [list(range(30))]),
    # two-vector body via shared indexing
    ("fun f(v, w) = [i <- [1..#v]: v[i] * 2 + w[i] * 3]",
     "f", [[1, 2, 3], [10, 20, 30]]),
    # checked op inside the body: fires identically on the native path
    ("fun f(v) = [x <- v: (x * 2 + 1) / (x - 2) + x]", "f", [[1, 2, 3]]),
]


def outcome(prog, entry, args, **kw):
    try:
        return ("ok", prog.run(entry, args, **kw))
    except ReproError as e:
        return (type(e).__name__, str(e))


@pytest.mark.parametrize("src,entry,args", PROGRAMS,
                         ids=[f"p{i}" for i in range(len(PROGRAMS))])
def test_native_matches_vector(src, entry, args):
    prog = compile_program(src)
    assert (outcome(prog, entry, args, backend="native")
            == outcome(prog, entry, args, backend="vector"))


def test_native_with_checking():
    src = PROGRAMS[0][0]
    prog = compile_program(src)
    args = [list(range(50))]
    assert (prog.run("f", args, backend="native", check=True)
            == prog.run("f", args, backend="vector"))


def test_native_batched_matches_vector():
    src = "fun f(v) = [x <- v: (x * x + x) * (x - 1)]"
    prog = compile_program(src)
    argsets = [[list(range(i, i + 8))] for i in range(6)]
    assert (prog.run_batched("f", argsets, backend="native")
            == prog.run_batched("f", argsets, backend="vector"))


def test_native_fuses_by_default():
    """backend="native" auto-enables fusion: the engine compiles at least
    one fused kernel for a fusable chain."""
    from repro.native.engine import get_engine
    src = PROGRAMS[0][0]
    prog = compile_program(src)
    engine = get_engine()
    before = engine.status()["fused_kernels"]
    prog.run("f", [list(range(64))], backend="native")
    assert engine.status()["fused_kernels"] >= max(before, 1)


class TestServeTiering:
    SRC = "fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]"
    ARGS = [list(range(40))]

    def test_promotion_after_n_hits(self):
        from repro.serve import BatchExecutor, ServeConfig
        want = compile_program(self.SRC).run("f", self.ARGS)
        with BatchExecutor(ServeConfig(native_after=2)) as ex:
            for _ in range(5):
                assert ex.submit(self.SRC, "f", self.ARGS).result(30) == want
            s = ex.stats.snapshot()
        assert s["promotions"] == 1 and s["demotions"] == 0

    def test_tiering_disabled(self):
        from repro.serve import BatchExecutor, ServeConfig
        with BatchExecutor(ServeConfig(native_after=0)) as ex:
            for _ in range(4):
                ex.submit(self.SRC, "f", self.ARGS).result(30)
            assert ex.stats.promotions == 0

    def test_demotion_on_native_compile_error(self, monkeypatch):
        """A key whose native run cannot compile is demoted and keeps
        serving correct results on the vector back end."""
        from repro.api import CompiledProgram
        from repro.serve import BatchExecutor, ServeConfig
        orig = CompiledProgram.run

        def fail_native(self, fname, args, **kw):
            if kw.get("backend") == "native":
                raise NativeCompileError("compile", "injected failure")
            return orig(self, fname, args, **kw)

        monkeypatch.setattr(CompiledProgram, "run", fail_native)
        want = compile_program(self.SRC).run("f", self.ARGS)
        with BatchExecutor(ServeConfig(native_after=1)) as ex:
            for _ in range(4):
                assert ex.submit(self.SRC, "f", self.ARGS).result(30) == want
            s = ex.stats.snapshot()
        assert s["promotions"] == 1 and s["demotions"] == 1
        assert s["errors"] == 0          # the failure never reached a caller
