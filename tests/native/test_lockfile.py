"""Lock-file hygiene of the on-disk kernel cache (repro.native.cache).

The ``<key>.lock`` protocol dedups compiles *across processes*: one
owner compiles, waiters poll for the artifact.  These tests prove the
crash-safety half of the contract — a lock whose owner was SIGKILLed
mid-compile (or is alive but wedged past the takeover timeout) is broken
by the next caller instead of deadlocking it, the owner's artifact is
reused without recompilation when it does land, and a finished compile
never leaves its lock behind.

Like test_cache.py, every test uses a private tmp_path cache directory
and is skipped without a C toolchain.
"""

import ctypes
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.native import toolchain
from repro.native.cache import KernelCache, source_key
from repro.native.codegen import emit_fused_source

pytestmark = pytest.mark.skipif(not toolchain.available(),
                                reason="no C toolchain")

TREE = ("prim", "add", (("arg", 0), ("arg", 1)))
ARGTYPES = [ctypes.c_void_p, ctypes.c_longlong, ctypes.c_void_p,
            ctypes.c_void_p]


def add_source() -> str:
    return emit_fused_source(TREE, ["int", "int"], [False, False],
                             name="__fused_lock_test")


def run_add(kernel, a, b):
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    out = np.empty(a.size, dtype=np.int64)
    kernel.run(out.ctypes.data, a.size, a.ctypes.data, b.ctypes.data)
    return out.tolist()


def sleeper() -> subprocess.Popen:
    """A live process standing in for a compile owner."""
    return subprocess.Popen([sys.executable, "-c",
                             "import time; time.sleep(120)"])


def test_lock_released_after_compile(tmp_path):
    cache = KernelCache(tmp_path)
    src = add_source()
    cache.get(src, ARGTYPES)
    assert not (tmp_path / f"{source_key(src)}.lock").exists()
    assert cache.stats()["takeovers"] == 0


def test_sigkilled_owner_takeover(tmp_path):
    """The regression the protocol exists for: the compile owner dies
    (SIGKILL — no cleanup, lock left behind) and a waiter must take over
    instead of deadlocking."""
    cache = KernelCache(tmp_path)
    src = add_source()
    lock = tmp_path / f"{source_key(src)}.lock"
    owner = sleeper()
    result = {}
    done = threading.Event()
    try:
        lock.write_text(str(owner.pid))

        def go():
            result["kernel"] = cache.get(src, ARGTYPES)
            done.set()

        threading.Thread(target=go, daemon=True).start()
        # while the owner lives, the caller defers to it
        assert not done.wait(0.5), "waiter compiled under a live owner"
        owner.kill()
        owner.wait()
        assert done.wait(15), "no takeover after the owner was SIGKILLed"
    finally:
        owner.kill()
        owner.wait()
    assert run_add(result["kernel"], [1, 2], [10, 20]) == [11, 22]
    s = cache.stats()
    assert s["takeovers"] >= 1 and s["compiles"] == 1
    assert not lock.exists()


def test_wedged_owner_age_takeover(tmp_path, monkeypatch):
    """An owner that is alive but will never finish (wedged compiler)
    loses the lock after $REPRO_NATIVE_LOCK_TIMEOUT."""
    monkeypatch.setenv("REPRO_NATIVE_LOCK_TIMEOUT", "0.2")
    cache = KernelCache(tmp_path)
    src = add_source()
    lock = tmp_path / f"{source_key(src)}.lock"
    lock.write_text(str(os.getpid()))            # an alive "owner": us
    aged = time.time() - 60
    os.utime(lock, (aged, aged))
    kernel = cache.get(src, ARGTYPES)
    assert run_add(kernel, [3], [4]) == [7]
    assert cache.stats()["takeovers"] >= 1
    assert not lock.exists()


def test_waiter_reuses_owner_artifact(tmp_path):
    """A waiter blocked behind a live owner loads the artifact the owner
    produced — zero compiles on the waiting side."""
    src = add_source()
    key = source_key(src)
    KernelCache(tmp_path).get(src, ARGTYPES)     # produce the artifact
    so_path = tmp_path / f"{key}.so"
    stash = tmp_path / "stash.so"
    os.rename(so_path, stash)                    # simulate a miss
    cache = KernelCache(tmp_path)                # cold in-memory table
    lock = tmp_path / f"{key}.lock"
    owner = sleeper()
    result = {}
    done = threading.Event()
    try:
        lock.write_text(str(owner.pid))

        def go():
            result["kernel"] = cache.get(src, ARGTYPES)
            done.set()

        threading.Thread(target=go, daemon=True).start()
        assert not done.wait(0.5), "waiter did not defer to a live owner"
        os.rename(stash, so_path)                # the owner "finishes"
        os.remove(lock)
        assert done.wait(15), "waiter never picked up the owner's artifact"
    finally:
        owner.kill()
        owner.wait()
    assert run_add(result["kernel"], [5], [6]) == [11]
    s = cache.stats()
    assert s["compiles"] == 0 and s["lock_waits"] >= 1
