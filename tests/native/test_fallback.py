"""The no-toolchain contract: with no C compiler, the native backend
falls back to the NumPy applier with exactly **one** process-wide warning
and zero behavioural differences; the fuzzer drops the ``native`` lane
with a note instead of failing."""

import warnings

import pytest

from repro import TransformOptions, compile_program
from repro.native import engine as engine_mod
from repro.native import toolchain

SRC = "fun f(v) = [x <- v: (x * 3 + 7) * x - 5]"
ARGS = [[1, 2, 3, 4]]


@pytest.fixture
def no_toolchain(monkeypatch, tmp_path):
    """Simulate a machine without a C compiler: $CC points at a binary
    that does not exist and the PATH holds no compiler at all."""
    monkeypatch.setenv("CC", str(tmp_path / "no-such-cc"))
    monkeypatch.setenv("PATH", str(tmp_path))
    toolchain.reset()
    engine_mod.reset_engine()
    yield
    toolchain.reset()
    engine_mod.reset_engine()


def test_discovery_reports_unavailable(no_toolchain):
    assert toolchain.find_cc() is None
    assert not toolchain.available()
    assert toolchain.toolchain_id() == "none"
    assert engine_mod.get_engine() is None


def test_native_backend_falls_back_with_one_warning(no_toolchain):
    prog = compile_program(SRC)
    want = prog.run("f", ARGS)
    with warnings.catch_warnings(record=True) as w:
        warnings.simplefilter("always")
        r1 = prog.run("f", ARGS, backend="native")
        r2 = prog.run("f", ARGS, backend="native")
    assert r1 == want and r2 == want
    native_warnings = [x for x in w if "no C toolchain" in str(x.message)]
    assert len(native_warnings) == 1
    assert native_warnings[0].category is RuntimeWarning


def test_fuzzer_skips_native_cleanly(no_toolchain):
    from repro.fuzz.differ import fuzz
    report = fuzz(seed=0, count=3, backends=("interp", "vector", "native"))
    assert report.skipped_backends == ("native",)
    assert report.ok
    assert "skipped: native" in report.summary()


def test_serve_tiering_inert_without_toolchain(no_toolchain):
    """Tiering never promotes when no compiler exists — requests keep
    running on the vector back end with correct results."""
    from repro.serve import BatchExecutor, ServeConfig
    with BatchExecutor(ServeConfig(native_after=1)) as ex:
        want = compile_program(SRC).run("f", ARGS)
        for _ in range(4):
            assert ex.submit(SRC, "f", ARGS).result(30) == want
        assert ex.stats.promotions == 0


def test_emit_c_native_works_without_toolchain(no_toolchain):
    """Real-codegen emission is pure string work — it must not need cc."""
    prog = compile_program(SRC, options=TransformOptions(fuse=True))
    out = prog.emit_c("f", ["seq(int)"], native=True)
    assert "native fused kernels" in out
    assert "void run(" in out
