"""Tests for the derivation-document generator (the KIDS presentation)."""

import pytest

from repro import TransformOptions, compile_program
from repro.lang.types import INT, TSeq
from repro.transform.derivation import derivation_document

SRC = """
fun sqs(n) = [j <- [1..n]: j * j]
fun main(k) = [i <- [1..k] | odd(i): sqs(i)]
"""


@pytest.fixture(scope="module")
def doc():
    prog = compile_program(SRC, options=TransformOptions(trace=True))
    return derivation_document(prog, "main", [INT])


class TestDerivationDocument:
    def test_has_all_sections(self, doc):
        for section in ("Source program", "Canonical form",
                        "Rule applications", "Transformed, iterator-free",
                        "VCODE", "Generated CVL-style C"):
            assert section in doc

    def test_prelude_not_dumped(self, doc):
        # `odd` comes from the prelude: the doc must show only user code
        assert "fun reduce(" not in doc
        assert "fun reverse(" not in doc

    def test_user_functions_present(self, doc):
        assert "fun sqs(n)" in doc and "fun main(k)" in doc

    def test_canonical_shows_filter_desugaring(self, doc):
        # after canonicalization no `|` filter remains
        canonical = doc.split("## 2")[1].split("## 3")[0]
        assert "restrict(" in canonical
        assert "|" not in canonical.replace("```", "")

    def test_rules_listed(self, doc):
        assert "{R0}" in doc and "{R2c}" in doc

    def test_transformed_shows_extensions(self, doc):
        assert "sqs^1" in doc

    def test_c_section(self, doc):
        assert '#include "cvl.h"' in doc

    def test_user_override_of_prelude_is_shown(self):
        prog = compile_program("fun odd(a) = true fun main(k) = [i <- [1..k] | odd(i): i]",
                               options=TransformOptions(trace=True))
        doc = derivation_document(prog, "main", [INT])
        assert "fun odd(a)" in doc

    def test_without_trace_still_renders(self):
        prog = compile_program(SRC)
        doc = derivation_document(prog, "main", [INT])
        assert "Rule applications" not in doc
        assert "sqs^1" in doc
