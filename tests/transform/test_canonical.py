"""Tests for R1 canonicalization and filter desugaring."""

from repro.lang import ast as A
from repro.lang.parser import parse_expression, parse_program
from repro.lang.prelude import merge_with_prelude
from repro.interp.interpreter import Interpreter
from repro.transform.canonical import canonicalize_expr, canonicalize_program
from repro.transform.trace import Trace


def canon(src):
    return canonicalize_expr(parse_expression(src))


def iters(e):
    return [n for n in A.walk(e) if isinstance(n, A.Iter)]


def is_canonical(it: A.Iter):
    d = it.domain
    return (isinstance(d, A.Call) and isinstance(d.fn, A.Var)
            and d.fn.name == "range" and isinstance(d.args[0], A.IntLit)
            and d.args[0].value == 1)


class TestR1:
    def test_range_domain_untouched(self):
        e = canon("[i <- [1..n]: i]")
        assert isinstance(e, A.Iter)

    def test_value_domain_rewritten(self):
        e = canon("[x <- v: x + 1]")
        assert isinstance(e, A.Let)
        assert all(is_canonical(it) for it in iters(e))

    def test_range_from_two_domain_rewritten(self):
        e = canon("[x <- [2..n]: x]")
        assert isinstance(e, A.Let)
        assert all(is_canonical(it) for it in iters(e))

    def test_nested_all_canonical(self):
        e = canon("[x <- v: [y <- x: y + 1]]")
        assert all(is_canonical(it) for it in iters(e))
        assert len(iters(e)) == 2

    def test_no_filters_remain(self):
        e = canon("[x <- v | x > 0: x]")
        assert all(it.filter is None for it in iters(e))
        assert all(is_canonical(it) for it in iters(e))

    def test_trace_records_rules(self):
        tr = Trace()
        canonicalize_expr(parse_expression("[x <- v | p(x): x]"), tr)
        assert "filter" in tr.rules_fired()
        assert "R1" in tr.rules_fired()


class TestSemanticsPreserved:
    """Canonicalization must not change meaning (interpreter as oracle)."""

    def check(self, src, fname, args):
        prog = merge_with_prelude(parse_program(src))
        before = Interpreter(prog).call(fname, args)
        after = Interpreter(canonicalize_program(prog)).call(fname, args)
        assert before == after
        return after

    def test_value_domain(self):
        got = self.check("fun f(v) = [x <- v: x * 2]", "f", [[3, 1, 4]])
        assert got == [6, 2, 8]

    def test_filter(self):
        got = self.check("fun f(n) = [i <- [1..n] | odd(i): i * i]", "f", [6])
        assert got == [1, 9, 25]

    def test_filter_over_value_domain(self):
        got = self.check("fun f(v) = [x <- v | x > 2: x]", "f", [[1, 5, 2, 7]])
        assert got == [5, 7]

    def test_nested_value_domains(self):
        got = self.check("fun f(vv) = [v <- vv: [x <- v: x + 1]]",
                         "f", [[[1], [2, 3]]])
        assert got == [[2], [3, 4]]

    def test_shadowing_preserved(self):
        got = self.check("fun f(v) = [x <- v: [x <- [1..x]: x]]", "f", [[2, 1]])
        assert got == [[1, 2], [1]]

    def test_body_uses_outer_binding(self):
        got = self.check("fun f(v, w) = [x <- v: [y <- w: x * y]]",
                         "f", [[1, 2], [10, 20]])
        assert got == [[10, 20], [20, 40]]
