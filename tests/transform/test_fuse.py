"""Tests for elementwise fusion (TransformOptions.fuse)."""

import random

import pytest

from repro import ReproError, TransformOptions, compile_program
from repro.lang import ast as A


def pair(src):
    on = compile_program(src, options=TransformOptions(fuse=True))
    off = compile_program(src)
    return on, off


def ops_of(prog, fname, args, types=None):
    _r, trace = prog.vector_trace(fname, args, types=types)
    return trace


class TestFusionCorrectness:
    CASES = [
        ("fun f(v) = [x <- v: x * x + x]", [[1, -2, 3]]),
        ("fun f(v) = [x <- v: (x * x + x) * (x - 1)]", [list(range(-5, 9))]),
        ("fun f(v) = [x <- v: x + 1 + 1 + 1 + 1]", [[0, 10]]),
        ("fun f(v) = [x <- v: if x * 2 > 6 then x else x * x]", [[1, 5, 3]]),
        ("fun f(v, w) = [i <- [1..#v]: v[i] * 2 + w[i] * 3]",
         [[1, 2], [10, 20]]),
        ("fun f(v) = [x <- v: not (x > 0 and x < 10)]", [[-1, 5, 20]]),
        ("fun f(n) = [i <- [1..n]: [j <- [1..i]: i * j + i - j]]", [5]),
        ("fun f(v) = sum([x <- v: x * x + 1])", [[1, 2, 3]]),
    ]

    @pytest.mark.parametrize("src,args", CASES)
    def test_all_backends_agree(self, src, args):
        on, off = pair(src)
        want = off.run("f", args)
        assert on.run("f", args) == want
        assert on.run("f", args, backend="vcode") == want
        assert on.run("f", args, backend="interp") == want

    def test_float_fusion(self):
        src = "fun f(v: seq(float)) = [x <- v: x * x + x - 0.5]"
        on, off = pair(src)
        v = [1.5, -2.25, 0.0]
        assert on.run("f", [v]) == off.run("f", [v])

    def test_comparison_result_kind(self):
        src = "fun f(v) = [x <- v: x * 2 > x + 3]"
        on, off = pair(src)
        v = [0, 5, -5]
        assert on.run("f", [v]) == off.run("f", [v]) == [False, True, False]


class TestFusionEffect:
    def test_fewer_vector_ops(self):
        src = "fun f(v) = [x <- v: (x * x + x) * (x - x * x)]"
        on, off = pair(src)
        v = list(range(50))
        assert len(ops_of(on, "f", [v])) < len(ops_of(off, "f", [v]))

    def test_fused_op_in_trace(self):
        src = "fun f(v) = [x <- v: x * x + x]"
        on, _ = pair(src)
        trace = ops_of(on, "f", [[1, 2]])
        assert any(op.startswith("__fused") for op, _n in trace)

    def test_single_prim_not_fused(self):
        src = "fun f(v) = [x <- v: x * x]"
        on, _ = pair(src)
        trace = ops_of(on, "f", [[1, 2]])
        assert not any(op.startswith("__fused") for op, _n in trace)

    def test_adjacent_groups_merge(self):
        # nested fusable subtrees must inline into one op, not chain
        src = "fun f(v) = [x <- v: (x + 1) * (x + 2) * (x + 3)]"
        on, _ = pair(src)
        trace = ops_of(on, "f", [[1, 2]])
        fused = [op for op, _n in trace if op.startswith("__fused")]
        assert len(fused) == 1

    def test_registry_size(self):
        src = "fun f(v) = [x <- v: x * x + x]"
        prog = compile_program(src, options=TransformOptions(fuse=True))
        _m, tp = prog.prepare("f", prog.entry_types("f", [[1]]))
        assert tp.fusion is not None
        names = [n for n in A.walk(tp.defs["f"].body)
                 if isinstance(n, A.ExtCall) and n.fn.startswith("__fused")]
        assert names and tp.fusion.size(names[0].fn) >= 2


class TestFusionSafety:
    def test_division_not_fused(self):
        # div must keep its zero check: stays an unfused checked kernel
        src = "fun f(v) = [x <- v: (x + 1) div x]"
        on, _ = pair(src)
        with pytest.raises(ReproError):
            on.run("f", [[2, 0]])

    def test_division_around_fusion_still_checked(self):
        src = "fun f(v) = [x <- v: (x * x + 1) div (x - x)]"
        on, _ = pair(src)
        with pytest.raises(ReproError):
            on.run("f", [[1]])

    def test_depth0_not_fused(self):
        # scalar code path untouched
        src = "fun f(a, b) = a * b + a"
        on, off = pair(src)
        assert on.run("f", [3, 4]) == off.run("f", [3, 4]) == 15

    def test_random_equivalence(self):
        rng = random.Random(0)
        src = "fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]"
        on, off = pair(src)
        for _ in range(10):
            v = [rng.randrange(-50, 50) for _ in range(rng.randrange(0, 9))]
            assert on.run("f", [v]) == off.run("f", [v])
