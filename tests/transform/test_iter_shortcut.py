"""The fuse pass's iteration shortcut: ``__seq_index_shared^1(v,
range1(length(v)))`` — "gather every element of v in order" — is the
identity, and rewrites to the zero-cost view op ``__iter^0(v)`` (a
depth-0 sequence and the depth-1 frame of its elements share one
representation, so no vector op executes at all)."""

import pytest

from repro import TransformOptions, compile_program
from repro.lang import ast as A
from repro.transform.fuse import shortcut_iteration

FUSE = TransformOptions(fuse=True)


def ext(fn, args, depth, arg_depths):
    return A.ExtCall(fn, args, depth, list(arg_depths))


def identity_gather(vec="v", ln_of="v"):
    """let L = length(v) in let I = range1(L) in __seq_index_shared^1(v, I)"""
    return A.Let("L", ext("length", [A.Var(ln_of)], 0, [0]),
                 A.Let("I", ext("range1", [A.Var("L")], 0, [0]),
                       ext("__seq_index_shared",
                           [A.Var(vec), A.Var("I")], 1, [0, 1])))


def find_iter(e):
    found = []

    def walk(x):
        if isinstance(x, A.ExtCall) and x.fn == "__iter":
            found.append(x)
        A.map_children(x, lambda c: (walk(c), c)[1])
        return x

    walk(e)
    return found


class TestRewriteFires:
    def test_basic_pattern(self):
        out = shortcut_iteration(identity_gather())
        hits = find_iter(out)
        assert len(hits) == 1
        assert isinstance(hits[0].args[0], A.Var)
        assert hits[0].args[0].name == "v"
        assert hits[0].depth == 0 and list(hits[0].arg_depths) == [0]

    def test_end_to_end_ir(self):
        """On the E14 map the transformed body iterates via __iter: no
        length, no range1, no identity gather left."""
        src = "fun f(v) = [x <- v: ((x * 3 + 7) * x - 5) * (x + x * x)]"
        prog = compile_program(src, options=FUSE)
        ir = prog.transformed_source("f", ["seq(int)"], by_types=True)
        assert "__iter" in ir
        assert "__seq_index_shared" not in ir
        assert "range1" not in ir

    def test_results_unchanged(self):
        src = "fun f(v) = [x <- v: x * x + x]"
        on = compile_program(src, options=FUSE)
        off = compile_program(src)
        v = list(range(-5, 25))
        for backend in ("vector", "vcode"):
            assert (on.run("f", [v], backend=backend)
                    == off.run("f", [v], backend=backend))


class TestRewriteBlocked:
    def test_different_vector(self):
        """range1(length(w)) indexing v is NOT the identity on v."""
        e = A.Let("L", ext("length", [A.Var("w")], 0, [0]),
                  A.Let("I", ext("range1", [A.Var("L")], 0, [0]),
                        ext("__seq_index_shared",
                            [A.Var("v"), A.Var("I")], 1, [0, 1])))
        assert not find_iter(shortcut_iteration(e))

    def test_shadowed_binding(self):
        """An inner rebinding of the length variable invalidates the
        chain — the rewrite must not see through the shadow."""
        e = A.Let("L", ext("length", [A.Var("v")], 0, [0]),
                  A.Let("L", ext("length", [A.Var("w")], 0, [0]),
                        A.Let("I", ext("range1", [A.Var("L")], 0, [0]),
                              ext("__seq_index_shared",
                                  [A.Var("v"), A.Var("I")], 1, [0, 1]))))
        assert not find_iter(shortcut_iteration(e))

    def test_opaque_index(self):
        """Any other index expression is left alone."""
        e = ext("__seq_index_shared", [A.Var("v"), A.Var("idx")], 1, [0, 1])
        out = shortcut_iteration(e)
        assert not find_iter(out)
        assert isinstance(out, A.ExtCall)
        assert out.fn == "__seq_index_shared"

    def test_default_pipeline_unaffected(self):
        """The shortcut lives in the fuse pass only: default options
        produce byte-identical IR with or without the rewrite in the
        codebase (pinned by the golden transcripts; spot-checked here)."""
        src = "fun f(v) = [x <- v: x + 1]"
        prog = compile_program(src)
        ir = prog.transformed_source("f", ["seq(int)"], by_types=True)
        assert "__iter" not in ir
