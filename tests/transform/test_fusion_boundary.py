"""The exact fusion boundary for checked ops (docs in
repro/transform/fuse.py, "Fusion boundary").

Two pinned properties:

1. the checked ops ``div``, ``mod``, ``fdiv``, ``sqrt_`` never appear
   inside a registered fused tree — they are fusion barriers;
2. the error a failing checked op raises is **byte-identical** whether
   fusion is on or off, on every back end (the check always sees the
   original operands at the original program point).
"""

import pytest

from repro import ReproError, TransformOptions, compile_program
from repro.transform.fuse import _UNSAFE

# one source per checked op, each embedding the op in a fusable chain so
# the pass is tempted on both sides, plus args that make the check fire
CHECKED = [
    ("div", "fun f(v) = [x <- v: (x * 2 + 1) / (x - 2) + x * x]",
     [[1, 2, 3]]),
    ("mod", "fun f(v) = [x <- v: (x + 1) mod (x - 2) * (x + x)]",
     [[1, 2, 3]]),
    ("fdiv",
     "fun f(v: seq(float)) = [x <- v: fdiv(x * x + 1.0, x - 2.0) * x]",
     [[1.0, 2.0]]),
    ("sqrt_",
     "fun f(v: seq(float)) = [x <- v: sqrt_(x * x - 10.0) + x * 2.0]",
     [[1.0, 2.0]]),
]

OK_ARGS = {  # same programs, arguments on which no check fires
    "div": [[5, 7, 9]],
    "mod": [[5, 7, 9]],
    "fdiv": [[5.0, 7.0]],
    "sqrt_": [[5.0, 7.0]],
}


def _prims(tree, out):
    if tree[0] == "prim":
        out.add(tree[1])
        for c in tree[2]:
            _prims(c, out)
    return out


def registry_prims(src, entry, args):
    prog = compile_program(src, options=TransformOptions(fuse=True))
    types = prog.entry_types(entry, args)
    tp = prog.prepare(entry, tuple(types))[1]
    prims = set()
    for tree in tp.fusion.trees.values():
        _prims(tree, prims)
    return prims, tp.fusion


def outcome(prog, args, backend):
    try:
        return ("ok", prog.run("f", args, backend=backend))
    except ReproError as e:
        return (type(e).__name__, str(e))


@pytest.mark.parametrize("op,src,args", CHECKED,
                         ids=[c[0] for c in CHECKED])
class TestCheckedOpBoundary:
    def test_checked_op_never_in_fused_tree(self, op, src, args):
        prims, fusion = registry_prims(src, "f", args)
        assert prims, "the surrounding chain should still fuse"
        assert not prims & _UNSAFE, \
            f"checked op leaked into a fused tree: {prims & _UNSAFE}"

    @pytest.mark.parametrize("backend", ["vector", "vcode", "interp"])
    def test_error_byte_identical(self, op, src, args, backend):
        on = compile_program(src, options=TransformOptions(fuse=True))
        off = compile_program(src)
        got_on = outcome(on, args, backend)
        got_off = outcome(off, args, backend)
        assert got_on[0] != "ok", "the check must fire on these args"
        assert got_on == got_off

    @pytest.mark.parametrize("backend", ["vector", "vcode"])
    def test_results_identical_when_check_passes(self, op, src, args,
                                                 backend):
        on = compile_program(src, options=TransformOptions(fuse=True))
        off = compile_program(src)
        good = OK_ARGS[op]
        assert (on.run("f", good, backend=backend)
                == off.run("f", good, backend=backend))


def test_unsafe_set_is_exactly_the_checked_ops():
    assert _UNSAFE == {"div", "mod", "fdiv", "sqrt_"}


def test_div_is_a_barrier_not_a_blocker():
    """Chains on each side of a checked op still fuse — the op bounds
    fusion, it does not disable it."""
    src = "fun f(v) = [x <- v: (x * 2 + 1) / (x * x - 2 * x + 3)]"
    prims, fusion = registry_prims(src, "f", [[1, 2, 3]])
    assert fusion.trees, "both operand chains should have fused"
    assert "div" not in prims
