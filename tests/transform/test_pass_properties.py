"""Metamorphic properties of the source-to-source passes: idempotence of
canonicalization and simplification, and semantics preservation of each
pass in isolation (hypothesis over generated inputs)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import TransformOptions, compile_program
from repro.lang import ast as A
from repro.lang.parser import parse_program
from repro.lang.prelude import merge_with_prelude
from repro.lang.pretty import pretty_program
from repro.transform.canonical import canonicalize_program
from repro.transform.simplify import simplify_expr

_SETTINGS = dict(max_examples=20, deadline=None,
                 suppress_health_check=list(HealthCheck))

SRCS = [
    "fun f(v) = [x <- v: x + 1]",
    "fun f(v) = [x <- v | odd(x): [y <- [1..x]: y]]",
    "fun f(v) = let s = sort(v) in [x <- s: x * 2]",
    "fun f(v) = [x <- reverse(v): if x > 0 then [1..x] else []]",
]

ints = st.integers(min_value=-20, max_value=20)


class TestCanonicalIdempotent:
    def test_second_pass_is_identity(self):
        for src in SRCS:
            p1 = canonicalize_program(parse_program(src))
            p2 = canonicalize_program(p1)
            assert pretty_program(p1) == pretty_program(p2), src

    def test_prelude_canonical_idempotent(self):
        p1 = canonicalize_program(merge_with_prelude(parse_program("")))
        p2 = canonicalize_program(p1)
        assert pretty_program(p1) == pretty_program(p2)


class TestSimplifyIdempotent:
    @settings(**_SETTINGS)
    @given(st.sampled_from(SRCS), st.data())
    def test_fixpoint_reached(self, src, data):
        prog = compile_program(src)
        args = [data.draw(st.lists(ints, max_size=5))]
        arg_types = prog.entry_types("f", args)
        _m, tp = prog.prepare("f", arg_types)
        for d in tp.defs.values():
            once = simplify_expr(d.body)
            twice = simplify_expr(once)
            assert A.count_nodes(once) == A.count_nodes(twice)


class TestPassesPreserveSemantics:
    @settings(**_SETTINGS)
    @given(st.sampled_from(SRCS), st.data())
    def test_simplify_on_off_agree(self, src, data):
        args = [data.draw(st.lists(ints, max_size=5))]
        on = compile_program(src)
        off = compile_program(src, options=TransformOptions(simplify=False))
        assert on.run("f", args) == off.run("f", args)

    @settings(**_SETTINGS)
    @given(st.sampled_from(SRCS), st.data())
    def test_shared_index_on_off_agree(self, src, data):
        args = [data.draw(st.lists(ints, max_size=5))]
        on = compile_program(src)
        off = compile_program(src,
                              options=TransformOptions(shared_seq_index=False))
        assert on.run("f", args) == off.run("f", args)
