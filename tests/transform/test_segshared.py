"""Tests for the segmented shared-index optimization (generalized §4.5):
an iterator-entry dist of a variable that the body only indexes (or takes
the length of) is eliminated in favour of a segmented gather."""

import random

import pytest

from repro import TransformOptions, compile_program
from repro.lang import ast as A
from repro.lang.types import INT, TSeq, seq_of


def work_of(prog, fname, args, types=None):
    _r, t = prog.vector_trace(fname, args, types=types)
    return sum(max(0, n) for _op, n in t)


def transformed(prog, fname, arg_types):
    _m, tp = prog.prepare(fname, tuple(arg_types))
    return tp


class TestRewriteFires:
    SRC = "fun f(vv) = [v <- vv: [i <- [1..#v]: v[i] * 2]]"

    def test_segshared_emitted(self):
        tp = transformed(compile_program(self.SRC), "f", [seq_of(INT, 2)])
        calls = [n for d in tp.defs.values() for n in A.walk(d.body)
                 if isinstance(n, A.ExtCall)]
        assert any(c.fn == "__seq_index_segshared" for c in calls)
        # and the quadratic dist of v is gone
        assert not any(c.fn == "dist" and c.depth == 1 for c in calls)

    def test_disabled_with_option(self):
        prog = compile_program(self.SRC,
                               options=TransformOptions(shared_seq_index=False))
        tp = transformed(prog, "f", [seq_of(INT, 2)])
        calls = [n for d in tp.defs.values() for n in A.walk(d.body)
                 if isinstance(n, A.ExtCall)]
        assert not any(c.fn == "__seq_index_segshared" for c in calls)

    def test_bare_use_blocks_rewrite(self):
        # v used whole (as a sequence value) inside the body: must replicate
        src = "fun f(vv: seq(seq(int))) = [v <- vv: [i <- [1..2]: v]]"
        tp = transformed(compile_program(src), "f", [seq_of(INT, 2)])
        calls = [n for d in tp.defs.values() for n in A.walk(d.body)
                 if isinstance(n, A.ExtCall)]
        assert any(c.fn == "dist" for c in calls)


class TestCorrectness:
    @pytest.mark.parametrize("src,args,types", [
        ("fun f(vv) = [v <- vv: [i <- [1..#v]: v[i] + i]]",
         [[[10, 20], [], [30, 40, 50]]], ["seq(seq(int))"]),
        ("fun f(vv) = [v <- vv: [i <- [1..#v]: v[#v - i + 1]]]",
         [[[1, 2, 3], [4]]], ["seq(seq(int))"]),
        ("fun f(vv) = [v <- vv: sum([i <- [1..#v]: v[i] * v[i]])]",
         [[[1, 2], [3, 4, 5], []]], ["seq(seq(int))"]),
    ])
    def test_matches_interpreter_and_unoptimized(self, src, args, types):
        on = compile_program(src)
        off = compile_program(src,
                              options=TransformOptions(shared_seq_index=False))
        want = on.run(src and "f", args, backend="interp", types=types)
        assert on.run("f", args, types=types) == want
        assert on.run("f", args, backend="vcode", types=types) == want
        assert off.run("f", args, types=types) == want

    def test_index_errors_still_raised(self):
        from repro import ReproError
        prog = compile_program(
            "fun f(vv: seq(seq(int))) = [v <- vv: [i <- [1..#v]: v[i + 1]]]")
        with pytest.raises(ReproError):
            prog.run("f", [[[1, 2]]])

    def test_deep_elements_gathered(self):
        src = ("fun f(vvv: seq(seq(seq(int)))) ="
               " [v <- vvv: [i <- [1..#v]: v[#v - i + 1]]]")
        prog = compile_program(src)
        vvv = [[[1], [2, 2]], [[3, 3, 3]]]
        assert prog.run_all("f", [vvv]) == [[[2, 2], [1]], [[3, 3, 3]]]

    def test_random_ragged(self):
        rng = random.Random(4)
        vv = [[rng.randrange(100) for _ in range(rng.randrange(0, 7))]
              for _ in range(25)]
        src = "fun f(vv) = [v <- vv: [i <- [1..#v]: v[i] * 10]]"
        prog = compile_program(src)
        assert prog.run_all("f", [vv], types=["seq(seq(int))"]) == \
            [[x * 10 for x in v] for v in vv]


class TestWorkReduction:
    def test_quadratic_replication_eliminated(self):
        src = "fun f(vv) = [v <- vv: [i <- [1..#v]: v[i]]]"
        on = compile_program(src)
        off = compile_program(src,
                              options=TransformOptions(shared_seq_index=False))
        vv = [[1] * 60 for _ in range(30)]  # 30 segments of 60
        w_on = work_of(on, "f", [vv], ["seq(seq(int))"])
        w_off = work_of(off, "f", [vv], ["seq(seq(int))"])
        # unoptimized replicates each 60-elem segment 60 times
        assert w_off > 10 * w_on, (w_on, w_off)

    def test_qsort_work_near_nlogn(self, qsort_src=None):
        src = """
            fun qs(s) =
              if #s <= 1 then s
              else let p = s[(#s + 1) div 2],
                       less = [x <- s | x < p: x],
                       same = [x <- s | x == p: x],
                       more = [x <- s | x > p: x],
                       sorted = [part <- [less, more]: qs(part)]
                   in concat(concat(sorted[1], same), sorted[2])
        """
        prog = compile_program(src)
        rng = random.Random(2)
        w = {}
        for n in (64, 1024):
            data = [rng.randrange(n * 10) for _ in range(n)]
            w[n] = work_of(prog, "qs", [data])
        # 16x data -> ~16 * (10/6) = ~27x work for n log n; far below 256x
        assert w[1024] / w[64] < 80, w

    def test_length_use_also_optimized(self):
        src = "fun f(vv) = [v <- vv: [i <- [1..#v]: v[i] + #v]]"
        on = compile_program(src)
        off = compile_program(src,
                              options=TransformOptions(shared_seq_index=False))
        vv = [[1] * 50 for _ in range(20)]
        ty = ["seq(seq(int))"]
        assert on.run("f", [vv], types=ty) == off.run("f", [vv], types=ty)
        assert work_of(on, "f", [vv], ty) < work_of(off, "f", [vv], ty) / 5
