"""Tests for the iterator-elimination rules: structural properties of the
transformed programs (no iterators, correct extension requests, R2d shape,
section-4.5 rewrites).  Semantic equivalence is covered by the integration
suite."""

import pytest

from repro.errors import TransformError
from repro.lang import ast as A
from repro.lang.types import INT, TFun, TSeq, seq_of
from repro.api import compile_program
from repro.transform.extensions import ext1_name, synthesize_ext1
from repro.transform.pipeline import TransformOptions


def transformed(src, fname, arg_types, options=None):
    prog = compile_program(src, options=options)
    mono, tp = prog.prepare(fname, tuple(arg_types))
    return tp


def body_nodes(tp, name, cls):
    return [n for n in A.walk(tp.defs[name].body) if isinstance(n, cls)]


class TestPostconditions:
    def test_no_iterators_anywhere(self):
        tp = transformed("""
            fun sqs(n) = [i <- [1..n]: i*i]
            fun nested(k) = [i <- [1..k]: sqs(i)]
        """, "nested", [INT])
        for d in tp.defs.values():
            assert not A.contains_iterator(d.body), d.name

    def test_extension_generated_for_nested_call(self):
        tp = transformed("""
            fun sqs(n) = [i <- [1..n]: i*i]
            fun nested(k) = [i <- [1..k]: sqs(i)]
        """, "nested", [INT])
        assert "sqs^1" in tp.defs

    def test_no_extension_for_flat_program(self):
        tp = transformed("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [INT])
        assert not any(n.endswith("^1") for n in tp.defs)

    def test_number_of_extensions_static(self):
        # "The number of parallel extensions ... is a static property"
        tp = transformed("""
            fun f(n) = [i <- [1..n]: g(i)]
            fun g(n) = [i <- [1..n]: h(i)]
            fun h(n) = n * n
        """, "f", [INT])
        exts = sorted(n for n in tp.defs if "^1" in n)
        assert exts == ["g^1", "h^1"]

    def test_recursive_function_single_extension(self):
        tp = transformed("""
            fun down(n) = if n <= 0 then [] else concat([n], down(n - 1))
            fun all(k) = [i <- [1..k]: down(i)]
        """, "all", [INT])
        assert "down^1" in tp.defs
        assert not A.contains_iterator(tp.defs["down^1"].body)


class TestExtCallShapes:
    def test_depth_annotations(self):
        tp = transformed("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [INT])
        muls = [n for n in body_nodes(tp, "sqs", A.ExtCall) if n.fn == "mul"]
        assert len(muls) == 1 and muls[0].depth == 1

    def test_nested_depth_two(self):
        tp = transformed(
            "fun tri(n) = [i <- [1..n]: [j <- [1..i]: i * j]]", "tri", [INT])
        muls = [n for n in body_nodes(tp, "tri", A.ExtCall) if n.fn == "mul"]
        assert muls[0].depth == 2

    def test_dist_inserted_for_outer_var(self):
        tp = transformed(
            "fun tri(n) = [i <- [1..n]: [j <- [1..i]: i]]", "tri", [INT])
        dists = [n for n in body_nodes(tp, "tri", A.ExtCall) if n.fn == "dist"]
        assert len(dists) == 1 and dists[0].depth == 1

    def test_no_dist_when_var_unused(self):
        tp = transformed(
            "fun f(n) = [i <- [1..n]: [j <- [1..3]: j]]", "f", [INT])
        dists = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "dist"]
        assert dists == []

    def test_loop_invariant_stays_depth0(self):
        tp = transformed(
            "fun f(n, c) = [i <- [1..n]: c * c]", "f", [INT, INT])
        muls = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "mul"]
        # c*c does not involve the bound variable: computed once at depth 0
        assert muls and all(m.depth == 0 for m in muls)

    def test_range1_emitted(self):
        tp = transformed("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [INT])
        assert any(n.fn == "range1" for n in body_nodes(tp, "sqs", A.ExtCall))


class TestR2dShape:
    SRC = "fun f(v) = [x <- v: if x > 0 then x else 0 - x]"

    def test_combine_emitted(self):
        tp = transformed(self.SRC, "f", [TSeq(INT)])
        combines = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "combine"]
        assert len(combines) == 1 and combines[0].depth == 0

    def test_guards_emitted(self):
        tp = transformed(self.SRC, "f", [TSeq(INT)])
        anys = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "__any"]
        empties = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "__empty"]
        assert len(anys) == 2 and len(empties) == 2

    def test_restricts_for_used_vars(self):
        # simplification removes the unused witness restricts, leaving the
        # per-branch variable restriction
        tp = transformed(self.SRC, "f", [TSeq(INT)])
        rs = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "restrict"]
        assert len(rs) == 2

    def test_restricts_include_witnesses_unsimplified(self):
        tp = transformed(self.SRC, "f", [TSeq(INT)],
                         options=TransformOptions(simplify=False))
        rs = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "restrict"]
        # x restricted in each branch + 2 witness restricts
        assert len(rs) >= 4

    def test_uniform_condition_stays_plain_if(self):
        tp = transformed(
            "fun f(v, b) = [x <- v: if b then x else 0]", "f",
            [TSeq(INT), __import__("repro.lang.types", fromlist=["BOOL"]).BOOL])
        combines = [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "combine"]
        assert combines == []
        ifs = body_nodes(tp, "f", A.If)
        assert len(ifs) == 1

    def test_depth0_if_stays_plain(self):
        tp = transformed("fun f(n) = if n > 0 then n else 0 - n", "f", [INT])
        assert body_nodes(tp, "f", A.If)
        assert not [n for n in body_nodes(tp, "f", A.ExtCall) if n.fn == "combine"]


class TestSharedIndexOptimization:
    SRC = "fun gather(v, ix) = [i <- ix: v[i]]"

    def test_enabled_by_default(self):
        tp = transformed(self.SRC, "gather", [TSeq(INT), TSeq(INT)])
        shared = [n for n in body_nodes(tp, "gather", A.ExtCall)
                  if n.fn == "__seq_index_shared"]
        assert shared and shared[0].arg_depths[0] == 0

    def test_disabled(self):
        tp = transformed(self.SRC, "gather", [TSeq(INT), TSeq(INT)],
                         options=TransformOptions(shared_seq_index=False))
        assert not [n for n in body_nodes(tp, "gather", A.ExtCall)
                    if n.fn == "__seq_index_shared"]

    def test_frame_dependent_source_not_shared(self):
        # v[i] where v is itself iterator-bound must NOT use the shared path
        src = "fun f(vv) = [v <- vv: v[1]]"
        tp = transformed(src, "f", [seq_of(INT, 2)])
        for d in tp.defs.values():
            for n in A.walk(d.body):
                if isinstance(n, A.ExtCall) and n.fn == "__seq_index_shared":
                    assert n.arg_depths[0] == 0


class TestNativeReduceOptimization:
    def test_rewrite(self):
        tp = transformed("fun total(v) = reduce(add, v)", "total", [TSeq(INT)],
                         options=TransformOptions(reduce_to_native=True))
        sums = [n for n in body_nodes(tp, "total", A.ExtCall) if n.fn == "sum"]
        assert sums

    def test_not_rewritten_by_default(self):
        tp = transformed("fun total(v) = reduce(add, v)", "total", [TSeq(INT)])
        assert not [n for n in body_nodes(tp, "total", A.ExtCall) if n.fn == "sum"]


class TestHigherOrder:
    def test_indirect_call_emitted(self):
        tp = transformed("fun ap(f, x) = f(x)", "ap", [TFun((INT,), INT), INT])
        ind = body_nodes(tp, "ap", A.IndirectCall)
        assert len(ind) == 1 and ind[0].depth == 0

    def test_indirect_in_iterator(self):
        tp = transformed("fun mapf(f, v) = [x <- v: f(x)]", "mapf",
                         [TFun((INT,), INT), TSeq(INT)])
        ind = []
        for d in tp.defs.values():
            ind += [n for n in A.walk(d.body) if isinstance(n, A.IndirectCall)]
        assert any(n.depth >= 1 for n in ind)


class TestExtensionSynthesis:
    def test_wrapper_shape(self):
        prog = compile_program("fun sqs(n) = [i <- [1..n]: i*i]")
        mono = prog.typed.instance("sqs", (INT,))
        d = prog.typed.mono_defs[mono]
        w = synthesize_ext1(d)
        assert w.name == ext1_name(mono)
        assert w.param_types == [TSeq(INT)]
        assert w.ret_type == TSeq(TSeq(INT))
        assert isinstance(w.body, A.Iter)

    def test_zero_arg_rejected(self):
        prog = compile_program("fun z() = 42")
        mono = prog.typed.instance("z", ())
        with pytest.raises(TransformError):
            synthesize_ext1(prog.typed.mono_defs[mono])
