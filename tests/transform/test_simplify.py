"""Tests for the post-transformation simplifier."""

import pytest

from repro import TransformOptions, compile_program
from repro.lang import ast as A
from repro.lang.parser import parse_expression
from repro.lang.types import INT, TSeq
from repro.transform.simplify import count_lets, simplify_expr


def simp(src):
    return simplify_expr(parse_expression(src))


class TestRewrites:
    def test_alias_inlined(self):
        e = simp("let x = y in x + x")
        assert not isinstance(e, A.Let)
        # x was replaced by y ("add" is the desugared + operator)
        assert A.free_vars(e) == {"y", "add"}

    def test_literal_inlined(self):
        e = simp("let x = 5 in x * x")
        assert not isinstance(e, A.Let)
        ints = [n.value for n in A.walk(e) if isinstance(n, A.IntLit)]
        assert ints == [5, 5]

    def test_dead_binding_dropped(self):
        e = simp("let x = f(1) in 42")
        assert isinstance(e, A.IntLit) and e.value == 42

    def test_live_binding_kept(self):
        e = simp("let x = f(1) in x + x")
        assert isinstance(e, A.Let)

    def test_chain_collapses(self):
        e = simp("let a = 1, b = a, c = b in c")
        assert isinstance(e, A.IntLit) and e.value == 1

    def test_shadowing_respected(self):
        # inner x shadows: outer alias must not leak into inner scope
        e = simp("let x = y in let x = f(2) in x + x")
        assert isinstance(e, A.Let)
        assert "y" not in A.free_vars(e)

    def test_inside_iterators(self):
        e = simp("[i <- [1..n]: let a = i in a * a]")
        assert count_lets(e) == 0

    def test_fixpoint(self):
        e = simp("let a = f(1) in let b = a in 7")
        assert isinstance(e, A.IntLit)


class TestInPipeline:
    SRC = """
        fun sqs(n) = [j <- [1..n]: j * j]
        fun main(k) = [i <- [1..k]: sqs(i)]
    """

    def test_simplified_has_fewer_lets(self):
        on = compile_program(self.SRC)
        off = compile_program(self.SRC, options=TransformOptions(simplify=False))
        _m, tp_on = on.prepare("main", (INT,))
        _m, tp_off = off.prepare("main", (INT,))
        lets_on = sum(count_lets(d.body) for d in tp_on.defs.values())
        lets_off = sum(count_lets(d.body) for d in tp_off.defs.values())
        assert lets_on < lets_off

    def test_results_unchanged(self):
        on = compile_program(self.SRC)
        off = compile_program(self.SRC, options=TransformOptions(simplify=False))
        assert on.run("main", [6]) == off.run("main", [6])

    @pytest.mark.parametrize("src,fname,args", [
        ("fun f(v) = [x <- v: if x > 0 then x else 0 - x]", "f", [[1, -2, 3]]),
        ("fun f(n) = [a <- [1..n]: [b <- [1..a]: a + b]]", "f", [4]),
        ("""fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)
            fun f(v) = [x <- v: fact(x)]""", "f", [[0, 3, 5]]),
        ("fun f(vv) = [v <- vv: reduce(add, v)]", "f", [[[1, 2], [3]]]),
    ])
    def test_equivalence_preserved(self, src, fname, args):
        on = compile_program(src)
        off = compile_program(src, options=TransformOptions(simplify=False))
        a = on.run_all(fname, args)
        b = off.run_all(fname, args)
        assert a == b

    def test_dead_dist_removed(self):
        # i is distributed for the inner body but the then-branch never
        # uses some rebindings; simplify must not change results
        src = ("fun f(n) = [i <- [1..n]: [j <- [1..i]:"
               " if odd(j) then j else i]]")
        on = compile_program(src)
        off = compile_program(src, options=TransformOptions(simplify=False))
        assert on.run_all("f", [5]) == off.run_all("f", [5])

    def test_fewer_vcode_instructions(self):
        on = compile_program(self.SRC)
        off = compile_program(self.SRC, options=TransformOptions(simplify=False))
        _m1, vp_on = on.compile_vcode("main", ["int"])
        _m2, vp_off = off.compile_vcode("main", ["int"])
        assert vp_on.instruction_count <= vp_off.instruction_count
