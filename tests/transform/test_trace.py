"""Tests for the rule-application trace (the section-5 derivation replay)."""


from repro import TransformOptions, compile_program
from repro.lang.types import INT, TSeq
from repro.transform.trace import NullTrace, Trace, TraceEntry


def traced(src, fname, arg_types):
    prog = compile_program(src, options=TransformOptions(trace=True))
    _mono, tp = prog.prepare(fname, tuple(arg_types))
    return tp.trace


class TestTraceMechanics:
    def test_entries_have_rule_and_context(self):
        tr = traced("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [INT])
        assert tr.entries
        for e in tr.entries:
            assert e.rule and e.where
            assert isinstance(e, TraceEntry)

    def test_context_names_function(self):
        tr = traced("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [INT])
        assert any(e.where == "sqs" for e in tr.entries)

    def test_str_contains_befores_and_afters(self):
        tr = traced("fun sqs(n) = [i <- [1..n]: i*i]", "sqs", [INT])
        text = str(tr)
        assert "==>" in text and "{R2c}" in text

    def test_null_trace_records_nothing(self):
        tr = NullTrace()
        tr.record_text("R0", "a", "b")
        assert tr.entries == []

    def test_long_lines_truncated(self):
        tr = Trace()
        tr.record_text("R1", "x" * 500, "y")
        # record_text stores raw; record() truncates — check the helper
        from repro.transform.trace import _one_line
        assert len(_one_line("x" * 500)) <= 200


class TestRuleCoverage:
    def test_r0_fires_for_extensions(self):
        tr = traced("""
            fun sqs(n) = [i <- [1..n]: i*i]
            fun main(k) = [i <- [1..k]: sqs(i)]
        """, "main", [INT])
        assert "R0" in tr.rules_fired()

    def test_r2d_fires_for_conditionals_in_frames(self):
        tr = traced("fun f(v) = [x <- v: if x > 0 then x else 0]",
                    "f", [TSeq(INT)])
        assert "R2d" in tr.rules_fired()

    def test_r2e_fires_for_lets(self):
        tr = traced("fun f(v) = [x <- v: let y = x + 1 in y * y]",
                    "f", [TSeq(INT)])
        assert "R2e" in tr.rules_fired()

    def test_r1_fires_during_canonicalization(self):
        from repro.lang.parser import parse_expression
        from repro.transform.canonical import canonicalize_expr
        tr = Trace()
        canonicalize_expr(parse_expression("[x <- v: x]"), tr)
        assert tr.rules_fired() == ["R1"]

    def test_default_options_skip_tracing(self):
        prog = compile_program("fun f(v) = [x <- v: x]")
        _m, tp = prog.prepare("f", (TSeq(INT),))
        assert tp.trace.entries == []
