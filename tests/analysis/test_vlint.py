"""VCODE lint: clean on everything the compiler emits; each hard-error
class detected on hand-built broken functions."""

import glob
import os

import pytest

from repro.analysis.vlint import check_program, lint_function, lint_program
from repro.api import compile_program
from repro.cli import _example_spec
from repro.errors import AnalysisError
from repro.lang import types as T
from repro.vcode.instructions import (
    Call, Const, Jump, JumpIfNot, Label, Prim, Ret, VFunction, VProgram,
)

EXAMPLES = sorted(glob.glob(os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "*.py")))


def _fn(instrs, nregs, params=(), name="t"):
    f = VFunction(name=name, params=list(params),
                  param_types=[T.TInt() for _ in params],
                  ret_type=T.TInt(), instrs=list(instrs), nregs=nregs)
    f.finalize()
    return f


def _codes(res):
    return {x.code for x in res.errors}


@pytest.mark.parametrize("path", EXAMPLES,
                         ids=[os.path.basename(p) for p in EXAMPLES])
def test_compiler_output_is_lint_clean(path):
    with open(path) as fh:
        spec = _example_spec(fh.read())
    from repro.vcode.compile import compile_transformed
    prog = compile_program(spec["SOURCE"])
    entry, args = spec["PROFILE_ENTRY"], list(spec["PROFILE_ARGS"])
    at = prog.entry_types(entry, args)
    _mono, tp = prog.prepare(entry, at, prog._fun_value_entries(args, at))
    res = lint_program(compile_transformed(tp))
    assert res.errors == []


def test_use_before_definition():
    f = _fn([Prim(0, "add", (1, 2), 0, (0, 0)), Ret(0)], nregs=3)
    assert "undefined-use" in _codes(lint_function(f))


def test_defined_on_one_path_only_is_undefined():
    # r1 is defined only when the branch is taken: a *must* analysis
    # rejects the later use
    f = _fn([Const(0, True), JumpIfNot(0, ".else"), Const(1, 7),
             Label(".else"), Ret(1)], nregs=2)
    assert "undefined-use" in _codes(lint_function(f))


def test_bad_jump_target():
    f = _fn([Const(0, 1), Jump(".nowhere"), Ret(0)], nregs=1)
    assert "bad-jump" in _codes(lint_function(f))


def test_duplicate_label():
    f = _fn([Label(".l"), Const(0, 1), Label(".l"), Ret(0)], nregs=1)
    assert "duplicate-label" in _codes(lint_function(f))


def test_missing_ret():
    f = _fn([Const(0, 1)], nregs=1)
    assert "missing-ret" in _codes(lint_function(f))


def test_register_out_of_range():
    f = _fn([Const(5, 1), Ret(5)], nregs=2)
    assert "register-range" in _codes(lint_function(f))


def test_prim_arity_mismatch():
    f = _fn([Const(0, 1), Prim(1, "add", (0, 0), 0, (0,)), Ret(1)], nregs=2)
    assert "prim-arity" in _codes(lint_function(f))


def test_call_arity_and_unknown_callee():
    callee = _fn([Ret(0)], nregs=1, params=(0,), name="g")
    bad = _fn([Const(0, 1), Call(1, "g", (0, 0)), Ret(1)], nregs=2,
              name="caller")
    ghost = _fn([Const(0, 1), Call(1, "zz", (0,)), Ret(1)], nregs=2,
                name="ghost")
    vp = VProgram({"g": callee, "caller": bad, "ghost": ghost})
    res = lint_program(vp)
    assert "call-arity" in _codes(res)
    assert "unknown-callee" in _codes(res)


def test_literal_consumed_at_vector_depth():
    f = _fn([Const(0, 3), Const(1, 2),
             Prim(2, "mul", (0, 1), 1, (1, 0)), Ret(2)], nregs=3)
    assert "scalar-at-vector-depth" in _codes(lint_function(f))


def test_dead_result_and_unreferenced_label_warn():
    f = _fn([Label(".never"), Const(0, 1),
             Prim(1, "add", (0, 0), 0, (0, 0)), Ret(0)], nregs=2)
    res = lint_function(f)
    assert res.errors == []
    warns = {x.code for x in res.warnings}
    assert "dead-result" in warns
    assert "unreferenced-label" in warns


def test_check_program_raises_stage_named_error():
    f = _fn([Prim(0, "add", (1, 2), 0, (0, 0)), Ret(0)], nregs=3,
            name="broken")
    with pytest.raises(AnalysisError) as ei:
        check_program(VProgram({"broken": f}))
    assert ei.value.stage == "vlint:broken"
    assert "undefined-use" in str(ei.value)
