"""Symbolic shape analysis: classification facts, the discharged tag
set, and the check="static" guard mode it drives — which must agree with
full strict checking everywhere while keeping the load-bearing
runtime-class checks."""

import glob
import os

import pytest

from repro.analysis.shapes import analyze_shapes
from repro.api import compile_program
from repro.cli import _example_spec
from repro.errors import InvariantError
from repro.guard import faults as F

EXAMPLES = sorted(glob.glob(os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "*.py")))

NEST_SRC = """
fun nest(n) = [i <- [1..n]: [j <- [1..i]: [k <- [1..j]: i*j + k]]]
fun nsum(n) = sum([i <- [1..n]: sum([j <- nest(i)[1 + i / 2]: sum(j)])])
"""


def _spec(path):
    with open(path) as f:
        return _example_spec(f.read())


def _analysis(source, entry, args):
    prog = compile_program(source)
    at = prog.entry_types(entry, args)
    _mono, tp = prog.prepare(entry, at, prog._fun_value_entries(args, at))
    return prog, analyze_shapes(tp)


def test_elementwise_sites_are_discharged():
    _prog, sa = _analysis("fun main(n) = [i <- [1..n]: i*i + i]", "main", [4])
    assert "kernel:mul" in sa.discharged
    assert "kernel:add" in sa.discharged
    assert "prim:mul" in sa.discharged
    static, runtime = sa.counts()
    assert static >= 2
    assert runtime == 0


def test_runtime_class_sites_are_never_discharged():
    _prog, sa = _analysis(NEST_SRC, "nsum", [6])
    static, runtime = sa.counts()
    assert runtime >= 1  # the 4.5 shared-index gathers, dist, ...
    runtime_fns = {s.fn for d in sa.defs.values()
                   for s in d.sites if s.cls == "runtime"}
    for fn in runtime_fns:
        assert f"kernel:{fn}" not in sa.discharged
        assert f"prim:{fn}" not in sa.discharged


def test_call_boundaries_of_valid_defs_are_discharged():
    _prog, sa = _analysis(NEST_SRC, "nsum", [6])
    assert any(t.startswith("call:") for t in sa.discharged)
    for name, facts in sa.defs.items():
        if facts.ret_valid:
            assert f"call:{name}" in sa.discharged


def test_sites_carry_reasons():
    _prog, sa = _analysis(NEST_SRC, "nsum", [6])
    for facts in sa.defs.values():
        for s in facts.sites:
            assert s.cls in ("static", "runtime")
            assert s.reason


def test_analysis_is_memoized_per_program():
    prog = compile_program("fun main(n) = [i <- [1..n]: i+1]")
    at = prog.entry_types("main", [3])
    _mono, tp = prog.prepare("main", at)
    assert analyze_shapes(tp) is analyze_shapes(tp)


@pytest.mark.parametrize("path", EXAMPLES,
                         ids=[os.path.basename(p) for p in EXAMPLES])
def test_static_mode_matches_full_mode_on_examples(path):
    """check=off, check=full and check=static agree element-wise on
    every example, on both vector back ends."""
    spec = _spec(path)
    prog = compile_program(spec["SOURCE"])
    entry, args = spec["PROFILE_ENTRY"], list(spec["PROFILE_ARGS"])
    base = prog.run(entry, args)
    for backend in ("vector", "vcode"):
        assert prog.run(entry, args, backend=backend, check=True) == base
        assert prog.run(entry, args, backend=backend,
                        check="static") == base


def test_static_mode_still_catches_kernel_level_faults():
    """The retained runtime-class checks catch descriptor corruption in
    the gather/scatter kernels even with every static site discharged."""
    for site in ("extract_insert.extract.top-bump",
                 "segments.gather_subtrees.desc-bump"):
        prog = compile_program(NEST_SRC)
        with F.injecting(site, seed=1) as inj:
            with pytest.raises(InvariantError):
                prog.run("nsum", [8], backend="vector", check="static")
        assert inj.fired, f"site {site} never fired"


def test_static_mode_via_run_batched():
    prog = compile_program("fun main(n) = sum([i <- [1..n]: i*i])")
    full = prog.run_batched("main", [[4], [7], [10]], check=True)
    static = prog.run_batched("main", [[4], [7], [10]], check="static")
    assert static == full == [30, 140, 385]
