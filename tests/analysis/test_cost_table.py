"""The per-primitive cost table is shared between the interpreter's
measured-cost profiler and the static work/span analysis, and the two
must never diverge: every aggregate primitive the interpreter implements
carries exactly one rule, the concrete ``prim_work`` evaluator and the
symbolic ``_measure_poly`` evaluator read the *same* measure string, and
a measure one side does not understand fails loudly (interpreter) or
conservatively (static pass) instead of silently disagreeing."""

import pytest

from repro.analysis.cost import (
    ASeq, AScalar, ZERO, _measure_poly, pconst, peval, pvar,
)
from repro.interp.cost import (
    ARG0_LEN, ARG1_SCALAR, ARGS01_LEN, COST_RULES, FLAT_ARG0, RESULT_LEN,
    UNIT, CostRule, cost_rule, prim_work,
)
from repro.interp.interpreter import PRIM_IMPLS

#: The sequence-touching subset of the interpreter's primitives — the
#: ones whose work grows with their input and therefore need a non-unit
#: rule.  Adding a primitive to ``PRIM_IMPLS`` that constructs or
#: traverses sequences requires classifying it here AND in
#: ``COST_RULES`` (this test is the tripwire).
AGGREGATE_PRIMS = frozenset({
    "length", "range", "range1", "seq_index", "seq_update", "restrict",
    "combine", "dist", "concat", "flatten", "sum", "maxval", "minval",
    "anytrue", "alltrue", "plus_scan", "max_scan", "rank", "permute",
})


class TestTableCoversInterpreter:
    def test_every_rule_names_a_real_primitive(self):
        stale = set(COST_RULES) - set(PRIM_IMPLS)
        assert not stale, f"cost rules for nonexistent primitives: {stale}"

    def test_every_aggregate_primitive_has_a_rule(self):
        missing = AGGREGATE_PRIMS - set(COST_RULES)
        assert not missing, f"aggregate primitives without a rule: {missing}"

    def test_no_unclassified_aggregates(self):
        """The table is exactly the aggregate set: a primitive that
        appears in COST_RULES but not in the pinned aggregate list means
        someone extended the table without updating this classification
        (or vice versa) — the two sides must move together."""
        assert set(COST_RULES) == AGGREGATE_PRIMS

    def test_scalar_primitives_default_to_unit(self):
        for name in set(PRIM_IMPLS) - AGGREGATE_PRIMS:
            rule = cost_rule(name)
            assert rule.measure == UNIT, (
                f"{name} is classified scalar but measures {rule.measure}")


class TestConcreteMeasures:
    """``prim_work`` on concrete values, one case per measure kind."""

    def test_unit(self):
        assert prim_work("length", [[1, 2, 3]], 3) == 1

    def test_result_len(self):
        assert prim_work("range", [1, 5], [1, 2, 3, 4, 5]) == 5

    def test_arg0_len(self):
        assert prim_work("sum", [[1] * 7], 7) == 7

    def test_args01_len(self):
        assert prim_work("concat", [[1, 2, 3], [4, 5, 6, 7]],
                         [1, 2, 3, 4, 5, 6, 7]) == 7

    def test_arg1_scalar(self):
        assert prim_work("dist", [9, 6], [9] * 6) == 6

    def test_flat_arg0(self):
        assert prim_work("flatten", [[[1, 2], [3]]], [1, 2, 3]) == 3

    def test_floor_is_one(self):
        # empty aggregates still cost one step, matching the
        # interpreter's charge of max(1, measure)
        assert prim_work("sum", [[]], 0) == 1
        assert prim_work("flatten", [[]], []) == 1

    def test_unknown_measure_fails_loudly(self):
        COST_RULES["__bogus_test_prim"] = CostRule("no-such-measure", "x")
        try:
            with pytest.raises(AssertionError):
                prim_work("__bogus_test_prim", [[1]], [1])
        finally:
            del COST_RULES["__bogus_test_prim"]


class TestSymbolicMeasuresAgree:
    """``_measure_poly`` evaluated at concrete sizes equals the
    interpreter-side measure for the same primitive — the two consumers
    of the shared table agree on every measure kind."""

    N = pvar("n")
    SEQ = ASeq((N,), pconst(100))                      # n ints, |x| <= 100
    NESTED = ASeq((N, pvar("m")), pconst(100))         # n rows, m total

    def _concrete(self, poly, n=7, m=11):
        assert poly is not None
        return peval(poly, {"n": n, "m": m})

    def test_unit_measures_zero_extra(self):
        # unit primitives charge only the per-site constant, which the
        # analyzer adds separately: the measure itself is zero
        assert _measure_poly("length", 0, pconst(1), [self.SEQ],
                             None) == ZERO

    def test_arg0_len(self):
        p = _measure_poly("sum", 0, pconst(1), [self.SEQ], None)
        assert self._concrete(p) == prim_work("sum", [[1] * 7], 7)

    def test_args01_len(self):
        p = _measure_poly("concat", 0, pconst(1), [self.SEQ, self.NESTED],
                          None)
        assert self._concrete(p) == 7 + 7

    def test_result_len(self):
        p = _measure_poly("range", 0, pconst(1),
                          [AScalar(pconst(1)), AScalar(pconst(5))],
                          pconst(5))
        assert self._concrete(p) == prim_work("range", [1, 5],
                                              [1, 2, 3, 4, 5])

    def test_arg1_scalar(self):
        p = _measure_poly("dist", 0, pconst(1),
                          [AScalar(pconst(9)), AScalar(pvar("n"))], None)
        assert self._concrete(p, n=6) == prim_work("dist", [9, 6], [9] * 6)

    def test_flat_arg0(self):
        p = _measure_poly("flatten", 0, pconst(1), [self.NESTED], None)
        assert self._concrete(p, m=3) == prim_work(
            "flatten", [[[1, 2], [3]]], [1, 2, 3])

    def test_unknown_measure_degrades_to_unbounded(self):
        COST_RULES["__bogus_test_prim"] = CostRule("no-such-measure", "x")
        try:
            assert _measure_poly("__bogus_test_prim", 0, pconst(1),
                                 [self.SEQ], None) is None
        finally:
            del COST_RULES["__bogus_test_prim"]
