"""Soundness of the static cost bounds against the interpreter, at
fuzzing scale: 200 generated programs, zero tolerated violations (the
acceptance criterion of the cost-analysis PR).

A violation here means a program whose measured interpreter work or span
exceeded the static certificate — i.e. the abstract charge model dropped
a cost somewhere.  The fuzzer shrinks any such program before reporting,
so a failure message is a minimal reproducer, not a 40-node blob."""

from repro.fuzz import fuzz_cost

COUNT = 200


def test_two_hundred_fuzzed_programs_zero_violations():
    report = fuzz_cost(seed=0, count=COUNT)
    assert report.count == COUNT
    msg = "\n\n".join(v.describe() for v in report.violations)
    assert report.ok, f"unsound bounds:\n{msg}"
    assert not report.invalid, "analyzer crashed on generated programs"
    # the lane must actually exercise the analyzer: most generated
    # programs are boundable, and the sound+unbounded+skipped split
    # accounts for every case
    assert report.sound >= COUNT // 2
    assert (report.sound + report.unbounded + report.skipped
            + len(report.invalid) + len(report.violations)) == COUNT
