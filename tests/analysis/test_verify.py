"""Phase-boundary IR verifier: the postconditions hold on every example
program and on fuzzed programs, opt out cleanly, and fail with the right
stage name on deliberately broken IR."""

import glob
import os

import pytest

from repro.analysis.verify import verify_canonical, verify_def
from repro.api import compile_program
from repro.cli import _example_spec
from repro.errors import AnalysisError
from repro.guard import faults as F
from repro.lang import ast as A
from repro.transform.pipeline import TransformOptions

EXAMPLES = sorted(glob.glob(os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "*.py")))


def _spec(path):
    with open(path) as f:
        return _example_spec(f.read())


def test_all_ten_examples_found():
    assert len(EXAMPLES) == 10


@pytest.mark.parametrize("path", EXAMPLES,
                         ids=[os.path.basename(p) for p in EXAMPLES])
def test_example_passes_every_phase_postcondition(path):
    """Compiling + preparing an example runs the verifier after every
    transform phase; verified_phases records each passing run."""
    spec = _spec(path)
    prog = compile_program(spec["SOURCE"])
    entry, args = spec["PROFILE_ENTRY"], list(spec["PROFILE_ARGS"])
    at = prog.entry_types(entry, args)
    _mono, tp = prog.prepare(entry, at, prog._fun_value_entries(args, at))
    stages = [s for s, _n in tp.verified_phases]
    assert stages and stages[0] == "verify:eliminate"
    assert all(s.startswith("verify:") for s in stages)
    assert all(n >= 1 for _s, n in tp.verified_phases)


def test_two_hundred_fuzzed_programs_pass_postconditions():
    from repro.fuzz import gen_case
    for seed in range(200):
        case = gen_case(seed)
        prog = compile_program(case.source)
        at = prog.entry_types(case.entry, list(case.args))
        _mono, tp = prog.prepare(case.entry, at)
        assert tp.verified_phases, f"seed {seed}: verifier did not run"


def test_verify_opt_out():
    prog = compile_program("fun main(n) = [i <- [1..n]: i*i]",
                           options=TransformOptions(verify=False))
    at = prog.entry_types("main", [4])
    _mono, tp = prog.prepare("main", at)
    assert tp.verified_phases == ()


def test_injected_transform_fault_fails_at_verify_eliminate():
    src = ("fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)\n"
           "fun main(n) = [i <- [1..n]: fact(i)]")
    with F.injecting("transform.R2d.drop-guard", seed=0) as inj:
        with pytest.raises(AnalysisError) as ei:
            compile_program(src).run("main", [5])
    assert inj.fired
    assert ei.value.stage == "verify:eliminate"
    assert "restrict" in ei.value.detail


# -- hand-built IR against verify_def ---------------------------------------

def _known(_name):
    return False  # no function constants in the hand-built terms


def _arity(_name):
    return None


def _check(body, params=("x",)):
    d = A.FunDef(name="f", params=list(params), body=body)
    verify_def(d, "verify:test", _known, _arity)


def test_residual_iterator_is_rejected():
    body = A.Iter(var="i", domain=A.Var("x"), body=A.Var("i"))
    with pytest.raises(AnalysisError) as ei:
        _check(body)
    assert "residual iterator" in ei.value.detail
    assert ei.value.stage == "verify:test"


def test_unbound_variable_is_rejected():
    with pytest.raises(AnalysisError, match="unbound variable"):
        _check(A.Var("nope"), params=())


def test_argument_above_supplied_depth_is_rejected():
    # x is a parameter (depth 0) consumed at depth 1: the depth
    # bookkeeping the R2c fault site corrupts
    body = A.ExtCall(fn="mul", args=[A.Var("x"), A.Var("x")],
                     depth=1, arg_depths=[1, 1])
    with pytest.raises(AnalysisError, match="can supply at most depth 0"):
        _check(body)


def test_application_without_frame_argument_is_rejected():
    # depth-1 application broadcasting *every* argument: nothing carries
    # the frame the parallel extension is supposed to map over
    body = A.ExtCall(fn="mul", args=[A.IntLit(2), A.IntLit(3)],
                     depth=1, arg_depths=[0, 0])
    with pytest.raises(AnalysisError,
                       match="no argument at the application depth"):
        _check(body)


def test_builtin_arity_is_checked():
    def arity(name):
        return 2 if name == "add" else None

    body = A.ExtCall(fn="add", args=[A.Var("x")], depth=0, arg_depths=[0])
    d = A.FunDef(name="f", params=["x"], body=body)
    with pytest.raises(AnalysisError, match="expects 2 arguments, got 1"):
        verify_def(d, "verify:test", _known, arity)


def test_tagged_restrict_outside_guard_is_rejected():
    e = A.ExtCall(fn="restrict", args=[A.Var("x"), A.Var("x")],
                  depth=0, arg_depths=[0, 0])
    e.origin = "R2d-restrict"
    with pytest.raises(AnalysisError,
                       match="not dominated by an __any emptiness guard"):
        _check(e)


def test_untagged_user_restrict_is_exempt():
    # the same term without provenance is user-written code: allowed
    e = A.ExtCall(fn="restrict", args=[A.Var("x"), A.Var("x")],
                  depth=0, arg_depths=[0, 0])
    _check(e)


def test_r2d_tag_on_non_combine_is_rejected():
    e = A.ExtCall(fn="add", args=[A.Var("x"), A.Var("x")],
                  depth=0, arg_depths=[0, 0])
    e.origin = "R2d"
    with pytest.raises(AnalysisError, match="non-combine"):
        _check(e)


def test_error_carries_pretty_subterm():
    body = A.ExtCall(fn="mul", args=[A.Var("x"), A.Var("x")],
                     depth=1, arg_depths=[1, 1])
    with pytest.raises(AnalysisError) as ei:
        _check(body)
    assert "mul" in ei.value.subterm
    assert "in:" in str(ei.value)


def test_verify_canonical_counts_defs():
    prog = compile_program("fun main(n) = [i <- [1..n]: i]",
                           use_prelude=False)
    assert verify_canonical(prog.canonical) == 1
