"""Static work/span/memory cost analysis.

The load-bearing properties: exact closed-form bounds are pinned for the
example programs (any change to the charge model shows up here first),
the bounds are *sound* — the interpreter's measured work and span never
exceed the prediction at the profiled arguments — data-dependent
recursion widens to an honest ``unbounded`` verdict instead of a wrong
polynomial, and the :class:`CostCertificate` API degrades to unbounded
rather than raising on malformed inputs."""

import glob
import os

import pytest

from repro.analysis.cost import (
    COST_MODEL_VERSION, CostCertificate, padd, pconst, peval, pjoin, pmul,
    pstr, psubst, pvar, pvars,
)
from repro.api import compile_program
from repro.cli import _example_spec
from repro.guard import runtime as _guard
from repro.guard.runtime import Budget, GuardConfig

EXAMPLES = sorted(glob.glob(os.path.join(
    os.path.dirname(__file__), "..", "..", "examples", "*.py")))

#: Examples whose entry the analyzer cannot bound, and why: quickhull
#: and qsort recurse on data-dependent splits (widened), shape_all
#: dispatches through a function value (indirect call).
UNBOUNDED = {"convex_hull": "widened", "quicksort": "widened",
             "higher_order": "indirect"}


def _cert(source, entry, args, types=None):
    prog = compile_program(source)
    at = prog.entry_types(entry, args, types)
    return prog, prog.cost_certificate(entry, at)


def _spec(path):
    with open(path) as f:
        spec = _example_spec(f.read())
    return spec["SOURCE"], spec["PROFILE_ENTRY"], spec["PROFILE_ARGS"]


# -- the polynomial domain ---------------------------------------------------

class TestPoly:
    def test_arithmetic(self):
        n = pvar("n")
        p = padd(pmul(pconst(3), pmul(n, n)), padd(pmul(pconst(7), n),
                                                   pconst(5)))
        assert pstr(p) == "3*n^2 + 7*n + 5"
        assert peval(p, {"n": 4}) == 3 * 16 + 7 * 4 + 5
        assert pvars(p) == frozenset({"n"})

    def test_join_is_coefficientwise_max(self):
        n = pvar("n")
        a = padd(pmul(pconst(2), n), pconst(9))
        b = padd(pmul(pconst(5), n), pconst(1))
        assert pstr(pjoin(a, b)) == "5*n + 9"

    def test_none_is_absorbing_top(self):
        n = pvar("n")
        assert padd(n, None) is None
        assert pmul(n, None) is None
        assert pjoin(n, None) is None
        assert pstr(None) == "unbounded"

    def test_subst(self):
        n, k = pvar("n"), pvar("k")
        p = padd(pmul(n, n), pconst(1))
        assert pstr(psubst(p, {"n": pmul(pconst(2), k)})) == "4*k^2 + 1"

    def test_subst_missing_var_is_unbounded(self):
        # a size variable with no binding cannot be bounded at the call
        # site; substitution degrades to TOP rather than guessing
        assert psubst(pvar("n"), {"m": pconst(3)}) is None


# -- pinned closed forms -----------------------------------------------------

class TestClosedForms:
    """Exact symbolic bounds for the tractable examples.  These pin the
    charge model: a coefficient drift means a cost-rule change."""

    def _rendered(self, name):
        path = next(p for p in EXAMPLES
                    if os.path.basename(p) == f"{name}.py")
        src, entry, args = _spec(path)
        _prog, cert = _cert(src, entry, args)
        return cert

    def test_quickstart(self):
        cert = self._rendered("quickstart")
        assert pstr(cert.work) == "3*k^2 + 7*k + 5"
        assert pstr(cert.span) == "13"
        assert pstr(cert.mem) == "3*k^2 + 6*k + 7"

    def test_scans_is_linear_work_constant_span(self):
        cert = self._rendered("scans")
        assert pstr(cert.work) == "20*#h + 13"
        assert pstr(cert.span) == "31"
        assert pvars(cert.work) == frozenset({"#h"})

    def test_custom_pass(self):
        cert = self._rendered("custom_pass")
        assert pstr(cert.work) == "8*#v + 3"
        assert pstr(cert.span) == "15"

    def test_primes_span_is_data_independent(self):
        cert = self._rendered("primes")
        assert pstr(cert.span) == "53"
        assert pvars(cert.span) == frozenset()

    def test_spmv_names_nested_size_vars(self):
        cert = self._rendered("spmv")
        # ##rows — the pooled inner element count — appears in the bound
        assert "#rows" in pvars(cert.work)
        assert "##rows" in pvars(cert.work)

    def test_model_version_is_stamped(self):
        cert = self._rendered("quickstart")
        assert cert.analysis.model == COST_MODEL_VERSION


# -- soundness on the examples -----------------------------------------------

@pytest.mark.parametrize("path", EXAMPLES,
                         ids=[os.path.basename(p)[:-3] for p in EXAMPLES])
def test_examples_sound_or_honestly_unbounded(path):
    """For every example: either the certificate is bounded and the
    interpreter's measured work/span at the profiled arguments stays
    within it, or the verdict is a pinned honest ``unbounded``."""
    name = os.path.basename(path)[:-3]
    src, entry, args = _spec(path)
    prog, cert = _cert(src, entry, args)
    if name in UNBOUNDED:
        assert not cert.bounded
        d = cert.analysis.defs[cert.entry]
        if UNBOUNDED[name] == "widened":
            assert d.widened
            assert "recursion" in d.reason
        else:
            assert not d.widened
            assert "indirect" in d.reason
        assert cert.predict(list(args)) == {
            "bounded": False, "work": None, "span": None, "mem": None}
        return
    assert cert.bounded, f"{name} regressed to unbounded"
    p = cert.predict(list(args))
    assert p["bounded"]
    with _guard.guarded(GuardConfig(budget=Budget(timeout_s=120.0))):
        _val, rep = prog.measure(entry, list(args))
    assert rep.work <= p["work"], f"{name}: work bound violated"
    assert rep.span <= p["span"], f"{name}: span bound violated"


def test_widening_terminates_and_marks_the_cycle():
    """Recursion whose summary keeps growing must widen (finite rounds)
    and name the widened definition, not loop or return a false bound."""
    src = ("fun halve(v) = if #v <= 1 then v "
           "else halve([i <- [1..#v / 2]: v[i]])")
    prog, cert = _cert(src, "halve", [[1, 2, 3, 4]])
    assert not cert.bounded
    assert cert.analysis.widened  # the cycle is named
    assert cert.analysis.rounds >= 1


def test_structural_recursion_on_fixed_args_still_widens():
    # even self-recursion on a scalar argument is data-dependent from
    # the analyzer's size language: the honest answer is unbounded
    src = "fun f(n) = if n <= 0 then 0 else n + f(n - 1)"
    _prog, cert = _cert(src, "f", [5])
    assert not cert.bounded


# -- the certificate API -----------------------------------------------------

class TestCertificateAPI:
    SRC = "fun main(k) = sum([i <- [1..k]: sum([j <- [1..k]: i*j])])"

    def test_predict_shape(self):
        _prog, cert = _cert(self.SRC, "main", [12])
        assert isinstance(cert, CostCertificate)
        p = cert.predict([12])
        assert set(p) == {"bounded", "work", "span", "mem"}
        assert p["bounded"] and p["work"] > 0 and p["span"] >= 1
        assert p["mem"] > 0

    def test_predict_scales_with_the_argument(self):
        _prog, cert = _cert(self.SRC, "main", [12])
        small, big = cert.predict([4]), cert.predict([40])
        assert big["work"] > small["work"]
        assert big["span"] == small["span"]  # data-independent span

    def test_predict_never_raises_on_malformed_args(self):
        _prog, cert = _cert(self.SRC, "main", [12])
        for bad in ([], [1, 2], [None], ["x"]):
            p = cert.predict(bad)
            assert p["bounded"] is False
            assert p["work"] is None

    def test_concurrency_is_work_over_span(self):
        _prog, cert = _cert(self.SRC, "main", [12])
        p = cert.predict([12])
        assert cert.concurrency([12]) == pytest.approx(
            p["work"] / max(1, p["span"]))

    def test_concurrency_unbounded_is_none(self):
        _prog, cert = _cert("fun f(n) = if n <= 0 then 0 else f(n - 1)",
                            "f", [3])
        assert cert.concurrency([3]) is None

    def test_certificate_is_cached_per_entry(self):
        prog = compile_program(self.SRC)
        at = prog.entry_types("main", [12])
        assert prog.cost_certificate("main", at) is \
            prog.cost_certificate("main", at)

    def test_analysis_json_lists_every_definition(self):
        _prog, cert = _cert(self.SRC, "main", [12])
        j = cert.analysis.to_json()
        assert j["model"] == COST_MODEL_VERSION
        assert any(k.startswith("main") for k in j["defs"])
        for d in j["defs"].values():
            assert d["verdict"] in ("bounded", "unbounded")

    def test_render_is_humane(self):
        _prog, cert = _cert(self.SRC, "main", [12])
        text = cert.render()
        assert "work = " in text and "span = " in text and "mem = " in text
