"""`repro analyze` end to end: the aggregate report, its JSON schema,
the fault-site classification, and the CLI exit codes."""

import json

import pytest

from repro.analysis.report import (
    ANALYSIS_SCHEMA_VERSION, analyze_source, classify_fault_sites,
)
from repro.cli import EXIT_ANALYSIS, EXIT_OK, main
from repro.errors import AnalysisError
from repro.guard import faults as F

SRC = ("fun fact(n) = if n <= 1 then 1 else n * fact(n - 1)\n"
       "fun main(n) = [i <- [1..n]: fact(i)]")


def test_analyze_source_report():
    rep = analyze_source(SRC, "main", [5], file="t.p")
    assert rep.file == "t.p" and rep.entry == "main"
    phases = [p["phase"] for p in rep.phases]
    assert phases[0] == "verify:canonicalize"
    assert "verify:eliminate" in phases
    assert rep.vlint.errors == []
    assert rep.vlint_functions >= 2  # main + fact^1 at least
    assert rep.vlint_instructions > 0


def test_json_schema_and_round_trip(tmp_path):
    rep = analyze_source(SRC, "main", [5])
    out = tmp_path / "analysis.json"
    rep.save(str(out))
    data = json.loads(out.read_text())
    assert data["version"] == ANALYSIS_SCHEMA_VERSION
    assert data["shapes"]["static_sites"] + data["shapes"]["runtime_sites"] \
        == sum(len(d["sites"]) for d in data["shapes"]["defs"].values())
    assert sorted(data["shapes"]["discharged"]) == data["shapes"]["discharged"]
    assert data["vlint"]["errors"] == []
    assert set(data["fault_sites"]) == set(F.FAULT_SITES)


def test_every_fault_site_is_classified():
    """Acceptance criterion: all fault-injection sites are either caught
    statically or explicitly flagged runtime-only."""
    sites = classify_fault_sites()
    assert set(sites) == set(F.FAULT_SITES)
    static = {s for s, v in sites.items()
              if v["classification"] == "static"}
    runtime = {s for s, v in sites.items()
               if v["classification"] == "runtime-only"}
    assert static == {"transform.R2d.drop-guard", "transform.R2c.depth-bump"}
    assert len(runtime) == 12
    for v in sites.values():
        assert v["caught_by"]


def test_render_mentions_all_three_passes():
    text = analyze_source(SRC, "main", [5]).render()
    assert "verifier:" in text
    assert "shapes:" in text
    assert "vlint:" in text
    assert "fault sites:" in text


def test_analyze_source_propagates_verifier_failure():
    with F.injecting("transform.R2c.depth-bump", seed=0):
        with pytest.raises(AnalysisError):
            analyze_source(SRC, "main", [5])


def test_cli_analyze_writes_json(tmp_path, capsys):
    src_file = tmp_path / "p.p"
    src_file.write_text(SRC)
    out = tmp_path / "analysis.json"
    rc = main(["analyze", str(src_file), "-e", "main", "-a", "5",
               "-o", str(out)])
    captured = capsys.readouterr()
    assert rc == EXIT_OK
    assert "verifier:" in captured.out
    assert json.loads(out.read_text())["entry"] == "main"


def test_cli_analyze_no_write(tmp_path, capsys):
    src_file = tmp_path / "p.p"
    src_file.write_text(SRC)
    rc = main(["analyze", str(src_file), "-a", "3", "--no-write"])
    capsys.readouterr()
    assert rc == EXIT_OK
    assert not (tmp_path / "analysis.json").exists()


def test_cli_analyze_defaults_from_example_script(tmp_path, capsys):
    rc = main(["analyze", "examples/quicksort.py", "--no-write"])
    captured = capsys.readouterr()
    assert rc == EXIT_OK
    assert "entry qsort" in captured.out


def test_cli_exit_code_six_on_analysis_error(tmp_path, capsys):
    src_file = tmp_path / "p.p"
    src_file.write_text(SRC)
    with F.injecting("transform.R2d.drop-guard", seed=0):
        rc = main(["analyze", str(src_file), "-a", "4", "--no-write"])
    captured = capsys.readouterr()
    assert rc == EXIT_ANALYSIS
    assert "analysis error" in captured.err
    assert "verify:eliminate" in captured.err
