"""``--threads auto``: thread-count selection from the cost
certificate's predicted concurrency (work / span).

The pinned regression property — the acceptance criterion of the cost
PR — is that the auto pick **never exceeds the predicted concurrency**:
spawning more threads than the program can keep busy only buys
scheduling overhead.  On the E19 benchmark workload (the segmented
float reduction in benchmarks/make_report.py) the pick must land within
one power-of-two step of the hand-picked thread count."""

import pytest

from repro.api import compile_program
from repro.parallel.engine import MIN_PARALLEL, default_threads, pick_threads

#: the E19 workload shape: fused float chain summed per segment
E19_SRC = ("fun f(v: seq(seq(float))) = "
           "[s <- v: sum([x <- s: (x * 0.5 + 1.0) * x - 0.25])]")


class TestPickThreads:
    @pytest.mark.parametrize("work", [1, 10, 1_000, 50_000, 10**7, 10**9])
    @pytest.mark.parametrize("span", [1, 13, 127, 10_000])
    @pytest.mark.parametrize("cpus", [1, 2, 3, 4, 6, 8, 64])
    def test_never_exceeds_predicted_concurrency(self, work, span, cpus):
        t = pick_threads(work, span, cpus)
        assert 1 <= t <= max(1, cpus)
        assert t <= max(1, work // span), (
            f"picked {t} threads for concurrency {work // span}")

    def test_serial_work_gets_one_thread(self):
        # span ~= work: no concurrency to exploit
        assert pick_threads(10_000, 10_000, cpus=8) == 1

    def test_tiny_work_gets_one_thread(self):
        # far below MIN_PARALLEL: the chunked path would not engage
        assert pick_threads(MIN_PARALLEL // 4, 1, cpus=8) == 1

    def test_wide_work_saturates_the_machine(self):
        assert pick_threads(10**9, 10, cpus=8) == 8

    def test_pick_is_a_power_of_two(self):
        for cpus in (1, 2, 3, 5, 6, 7, 12):
            t = pick_threads(10**9, 1, cpus)
            assert t & (t - 1) == 0


class TestE19Workload:
    def _cert(self, nseg=64, per=32):
        arg = [[0.5] * per for _ in range(nseg)]
        prog = compile_program(E19_SRC)
        at = prog.entry_types("f", [arg])
        return prog, prog.cost_certificate("f", at), arg

    def test_workload_is_boundable(self):
        _prog, cert, arg = self._cert()
        p = cert.predict([arg])
        assert p["bounded"]
        assert cert.concurrency([arg]) > 1

    def test_auto_within_one_step_of_hand_picked(self):
        """At the benchmark's real scale (4000 x 256) the hand-picked
        count is 4 threads on a >= 4-CPU box (benchmarks/BENCH_E19.json's
        target); auto must land within one power-of-two step for every
        plausible machine width."""
        _prog, cert, _ = self._cert()
        # scale the prediction to the benchmark's 4000 x 256 shape
        prog = compile_program(E19_SRC)
        arg = [[0.5] * 256 for _ in range(100)]   # same ratios, smaller
        at = prog.entry_types("f", [arg])
        p = prog.cost_certificate("f", at).predict([arg])
        assert p["bounded"]
        scale = 4000 // 100
        work, span = p["work"] * scale, p["span"]
        for cpus in (4, 8):
            hand = min(4, cpus)                    # the E19 target pick
            auto = pick_threads(work, span, cpus)
            assert hand // 2 <= auto <= hand * 2, (
                f"auto={auto} vs hand-picked {hand} on {cpus} cpus")

    def test_end_to_end_auto_matches_explicit(self):
        prog, _cert, arg = self._cert(nseg=8, per=4)
        want = prog.run("f", [arg])
        assert prog.run("f", [arg], backend="parallel",
                        threads="auto") == want
        assert prog.run("f", [arg], backend="parallel", threads=2) == want


class TestAutoFallback:
    def test_unbounded_program_falls_back_to_default(self):
        """``threads="auto"`` on a program the analyzer cannot bound
        quietly uses the default count — never an error."""
        src = ("fun q(s) = if #s <= 1 then s else "
               "q([i <- [1..#s - 1]: s[i]])")
        prog = compile_program(src)
        at = prog.entry_types("q", [[3, 1, 2]])
        assert not prog.cost_certificate("q", at).bounded
        assert prog.run("q", [[3, 1, 2]], backend="parallel",
                        threads="auto") == [3]

    def test_auto_is_ignored_by_serial_backends(self):
        prog = compile_program("fun main(n) = sum([i <- [1..n]: i])")
        assert prog.run("main", [5], threads="auto") == 15
        assert prog.run("main", [5], backend="interp",
                        threads="auto") == 15

    def test_default_threads_is_positive(self):
        assert default_threads() >= 1
