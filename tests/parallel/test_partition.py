"""The segment-aware partitioner's three pinned properties
(docs/PARALLEL.md):

* **exact disjoint cover** — the chunk bounds are nondecreasing, start
  at 0, end at ``total``, and every element lands in exactly one chunk;
* **balance** — no chunk exceeds ``ceil(total/parts) + max(counts)``
  elements (elementwise plans: ``ceil(total/parts)`` exactly);
* **lossless round-trip** — ``stitch(plan, split(plan, v)) == v``.

All three are checked over seeded random segment shapes, including the
adversarial ones: empty segments, one giant segment, more parts than
segments, and empty vectors.
"""

import random

import numpy as np
import pytest

from repro.errors import InvariantError
from repro.vector.partition import (
    ChunkPlan, imbalance, plan_partition, split, stitch,
)
from repro.vector.segments import INT_DTYPE


def random_counts(rng: random.Random) -> np.ndarray:
    """A random ragged descriptor level: mixes empty, small and giant
    segments."""
    shape = rng.choice(["mixed", "tiny", "skewed", "empty-heavy"])
    nseg = rng.randrange(1, 40)
    if shape == "mixed":
        counts = [rng.randrange(0, 30) for _ in range(nseg)]
    elif shape == "tiny":
        counts = [rng.randrange(0, 3) for _ in range(nseg)]
    elif shape == "skewed":
        counts = [rng.randrange(0, 5) for _ in range(nseg)]
        counts[rng.randrange(nseg)] = rng.randrange(100, 400)
    else:
        counts = [0] * nseg
        for _ in range(max(1, nseg // 4)):
            counts[rng.randrange(nseg)] = rng.randrange(1, 20)
    return np.array(counts, dtype=INT_DTYPE)


def check_cover(plan: ChunkPlan) -> None:
    b = plan.bounds
    assert b.size == plan.parts + 1
    assert int(b[0]) == 0 and int(b[-1]) == plan.total
    assert np.all(np.diff(b) >= 0)
    assert int(plan.sizes().sum()) == plan.total


@pytest.mark.parametrize("trial", range(60))
def test_segmented_plans_cover_balance_roundtrip(trial):
    rng = random.Random(1000 + trial)
    counts = random_counts(rng)
    total = int(counts.sum())
    parts = rng.randrange(1, 12)
    plan = plan_partition(total, parts, counts=counts)

    check_cover(plan)

    # every boundary is a segment start: each segment is owned whole
    starts = np.concatenate([np.zeros(1, dtype=INT_DTYPE),
                             np.cumsum(counts, dtype=INT_DTYPE)])
    assert np.all(np.isin(plan.bounds, starts))
    sb = plan.seg_bounds
    assert sb is not None and np.array_equal(starts[sb], plan.bounds)

    # balance: at most one segment past the ideal even share
    slack = -(-total // parts) + (int(counts.max()) if counts.size else 0)
    assert int(plan.sizes().max(initial=0)) <= slack

    # lossless round-trip of the values
    values = np.arange(total, dtype=INT_DTYPE) * 3 - 7
    chunks = split(plan, values)
    assert len(chunks) == parts
    assert np.array_equal(stitch(plan, chunks), values)


@pytest.mark.parametrize("trial", range(30))
def test_elementwise_plans_are_even(trial):
    rng = random.Random(7000 + trial)
    total = rng.randrange(0, 5000)
    parts = rng.randrange(1, 17)
    plan = plan_partition(total, parts)
    check_cover(plan)
    assert plan.seg_bounds is None
    sizes = plan.sizes()
    assert int(sizes.max(initial=0)) <= -(-total // parts)
    if sizes.size:
        assert int(sizes.max()) - int(sizes.min()) <= 1
    values = np.arange(total)
    assert np.array_equal(stitch(plan, split(plan, values)), values)


def test_more_parts_than_segments():
    counts = np.array([5, 7], dtype=INT_DTYPE)
    plan = plan_partition(12, 8, counts=counts)
    check_cover(plan)
    assert int(np.count_nonzero(plan.sizes())) <= counts.size


def test_empty_vector_any_parts():
    for parts in (1, 3, 16):
        plan = plan_partition(0, parts)
        check_cover(plan)
        assert stitch(plan, split(plan, np.empty(0))).size == 0


def test_one_giant_segment_is_one_chunk():
    """An indivisible segment cannot be split however many workers ask."""
    counts = np.array([0, 10_000, 0], dtype=INT_DTYPE)
    plan = plan_partition(10_000, 4, counts=counts)
    check_cover(plan)
    assert int(plan.sizes().max()) == 10_000


def test_imbalance_metric():
    assert imbalance(plan_partition(1000, 4)) == pytest.approx(1.0)
    counts = np.array([900, 50, 50], dtype=INT_DTYPE)
    assert imbalance(plan_partition(1000, 4, counts=counts)) \
        == pytest.approx(900 / 250)


def test_bad_arguments_rejected():
    with pytest.raises(ValueError, match="parts"):
        plan_partition(10, 0)
    with pytest.raises(ValueError, match="total"):
        plan_partition(-1, 2)
    with pytest.raises(ValueError, match="counts sum"):
        plan_partition(10, 2, counts=np.array([3, 3], dtype=INT_DTYPE))
    with pytest.raises(ValueError, match="cannot split"):
        split(plan_partition(10, 2), np.arange(9))


def test_torn_stitch_is_contained():
    plan = plan_partition(10, 2)
    chunks = split(plan, np.arange(10))
    with pytest.raises(InvariantError) as ei:
        stitch(plan, [chunks[0][:-1], chunks[1]])
    assert ei.value.stage == "parallel.stitch"


def test_misaligned_plan_is_contained():
    """A hand-built plan with a boundary inside a segment is rejected by
    the always-on validator (the fault site drives this same check from
    the injection side; tests/parallel/test_containment.py)."""
    from repro.vector.partition import _validate
    counts = np.array([4, 4], dtype=INT_DTYPE)
    starts = np.array([0, 4, 8], dtype=INT_DTYPE)
    bad = ChunkPlan(8, 2, np.array([0, 3, 8], dtype=INT_DTYPE),
                    np.array([0, 1, 2], dtype=INT_DTYPE))
    with pytest.raises(InvariantError) as ei:
        _validate(bad, starts)
    assert ei.value.stage == "parallel.partition"
