"""The parallel conformance suite: ``backend="parallel"`` must be
bit-identical to the serial back ends at every thread count.

This is the acceptance battery for the multicore engine — every runnable
example program and 200 fuzzer-generated programs, each at threads 1, 2
and 4, compared against the vector back end (and, with a toolchain,
against serial native).  ``MIN_PARALLEL`` is lowered so even the small
programs exercise the real dispatch paths instead of falling back; a
separate fixture disables the OpenMP delegate to pin the pure-Python
chunked path specifically.  Thread counts above the machine's CPU count
are deliberate — oversubscription must not change a single bit.
"""

import ast as pyast
import os
from pathlib import Path

import pytest

from repro import ReproError, compile_program
from repro.native import toolchain
from repro.parallel import engine as PE

THREADS = (1, 2, 4)
EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(autouse=True)
def low_min_parallel(monkeypatch):
    """Force real parallel dispatch on small inputs, and drop the cached
    engines afterwards so no other test sees the lowered threshold."""
    monkeypatch.setattr(PE, "MIN_PARALLEL", 8)
    yield
    PE.reset_engines()


@pytest.fixture
def chunked_only(monkeypatch):
    """Pin the pure-Python chunked path: engines built under this fixture
    never get the OpenMP delegate, whatever the toolchain supports."""
    PE.reset_engines()
    monkeypatch.setattr(PE.toolchain, "openmp_available", lambda: False)
    yield
    PE.reset_engines()


def outcome(prog, entry, args, **kw):
    try:
        return ("ok", prog.run(entry, args, **kw))
    except ReproError as e:
        return (type(e).__name__,)


# -- a fixed battery hitting every engine hook ------------------------------

PROGRAMS = [
    # fused elementwise chain, large enough to chunk without the fixture
    ("fun f(n) = sum([x <- [1..n]: ((x * 3 + 7) * x - 5) * (x + x)])",
     "f", [6000]),
    # float fused arithmetic
    ("fun f(v: seq(float)) = [x <- v: x * x + x - 0.5]",
     "f", [[1.5, -2.25, 0.0, 8.0] * 40]),
    # bool output kind
    ("fun f(v) = [x <- v: x * 2 > x + 3]", "f", [list(range(-30, 90))]),
    # segmented reductions and scans over ragged nests
    ("fun f(n) = [i <- [1..n]: sum([j <- [1..i]: i * j])]", "f", [120]),
    ("fun f(n) = [i <- [1..n]: maxval([j <- [1..i]: j * (i - j)])]",
     "f", [90]),
    # shared-index gather (section 4.5)
    ("fun f(n) = let v = [i <- [1..n]: i * i] in "
     "[i <- [1..n]: v[n + 1 - i]]", "f", [5000]),
    # out-of-range gather: the error must be identical too
    ("fun f(n) = let v = [1..n] in [i <- [1..n]: v[i + 1]]", "f", [5000]),
    # strict reduction of an empty segment: same error at every count
    ("fun f(n) = [i <- [1..n]: maxval([j <- [1..i - 1]: j])]", "f", [40]),
    # recursive divide and conquer (quicksort shape)
    ("fun q(v) = if #v <= 1 then v else let p = v[1 + #v / 2] in "
     "concat(concat(q([x <- v | x < p: x]), [x <- v | x == p: x]), "
     "q([x <- v | x > p: x])) "
     "fun f(n) = q([i <- [1..n]: (i * 37) mod 101])", "f", [300]),
]


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("src,entry,args", PROGRAMS,
                         ids=[f"p{i}" for i in range(len(PROGRAMS))])
def test_programs_match_vector(src, entry, args, threads):
    prog = compile_program(src)
    assert (outcome(prog, entry, args, backend="parallel", threads=threads)
            == outcome(prog, entry, args, backend="vector"))


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("src,entry,args", PROGRAMS,
                         ids=[f"p{i}" for i in range(len(PROGRAMS))])
def test_programs_match_vector_chunked(chunked_only, src, entry, args,
                                       threads):
    prog = compile_program(src)
    assert (outcome(prog, entry, args, backend="parallel", threads=threads)
            == outcome(prog, entry, args, backend="vector"))


@pytest.mark.skipif(not toolchain.available(), reason="no C toolchain")
@pytest.mark.parametrize("src,entry,args", PROGRAMS,
                         ids=[f"p{i}" for i in range(len(PROGRAMS))])
def test_programs_match_native(src, entry, args):
    prog = compile_program(src)
    assert (outcome(prog, entry, args, backend="parallel", threads=4)
            == outcome(prog, entry, args, backend="native"))


# -- every runnable example program -----------------------------------------

def _example_spec(path: Path) -> dict:
    spec = {}
    for node in pyast.parse(path.read_text()).body:
        if (isinstance(node, pyast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], pyast.Name)
                and node.targets[0].id in ("SOURCE", "PROFILE_ENTRY",
                                           "PROFILE_ARGS")):
            spec[node.targets[0].id] = pyast.literal_eval(node.value)
    return spec


EXAMPLE_FILES = sorted(p for p in EXAMPLES.glob("*.py")
                       if "SOURCE" in _example_spec(p)
                       and "PROFILE_ENTRY" in _example_spec(p))


@pytest.mark.parametrize("threads", THREADS)
@pytest.mark.parametrize("path", EXAMPLE_FILES,
                         ids=[p.stem for p in EXAMPLE_FILES])
def test_examples_bit_identical(path, threads):
    spec = _example_spec(path)
    prog = compile_program(spec["SOURCE"])
    entry, args = spec["PROFILE_ENTRY"], list(spec["PROFILE_ARGS"])
    assert (prog.run(entry, args, backend="parallel", threads=threads)
            == prog.run(entry, args, backend="vector")), path.name


# -- 200 generated programs at every thread count ---------------------------

@pytest.mark.parametrize("chunk", range(4))
def test_fuzzed_programs_bit_identical(chunk):
    """200 generated programs: the parallel back end at threads 1, 2 and
    4 against the vector reference — equal values or the same error
    class (chunked so a failure names a 50-seed window)."""
    from repro.fuzz.gen import gen_case
    for seed in range(chunk * 50, (chunk + 1) * 50):
        case = gen_case(seed)
        try:
            prog = compile_program(case.source)
            ref = outcome(prog, case.entry, list(case.args),
                          backend="vector", types=list(case.types))
        except ReproError:
            continue                  # generator bug, not a backend issue
        for threads in THREADS:
            got = outcome(prog, case.entry, list(case.args),
                          backend="parallel", threads=threads,
                          types=list(case.types))
            assert got == ref, f"seed {seed} at {threads} threads"


# -- the differ's fifth back end --------------------------------------------

class TestDifferIntegration:
    def test_resolve_plus_parallel(self):
        from repro.fuzz.differ import resolve_backends
        assert resolve_backends("+parallel") == \
            ("interp", "vector", "vcode", "parallel")

    def test_unknown_backend_still_rejected(self):
        from repro.fuzz.differ import resolve_backends
        with pytest.raises(ValueError, match="unknown fuzz back end"):
            resolve_backends("+paralel")

    def test_fuzz_runs_or_skips_cleanly(self):
        """On a multi-CPU machine the parallel lane runs; on a single CPU
        it is dropped up front and named in the summary — never an
        error."""
        from repro.fuzz.differ import fuzz
        report = fuzz(0, 6, backends=("vector", "vcode", "parallel"),
                      shrink=False)
        assert report.ok, report.summary()
        if (os.cpu_count() or 1) < 2:
            assert report.skipped_backends == ("parallel",)
            assert "parallel (single CPU)" in report.summary()
        else:
            assert report.skipped_backends == ()
