"""Parallel fault containment: every registered ``parallel.*`` fault
site's corruption must be caught by an always-on validation raising a
stage-named InvariantError — a torn chunk, a misaligned split or a lost
barrier can never silently corrupt a result.

The battery drives a chunked :class:`ParallelEngine` (``native=None`` —
the OpenMP path compiles whole kernels and has no chunk machinery to
corrupt) over a segmented workload large enough to dispatch for real.
Segment sizes are all >= 8 so a boundary bumped by the injector's +1..3
can never land on another segment start and produce an accidentally
valid plan.
"""

import numpy as np
import pytest

from repro.errors import InvariantError
from repro.guard import faults as F
from repro.parallel.engine import ParallelEngine
from repro.vector.nested import NestedVector
from repro.vector.segments import INT_DTYPE, seg_sum

#: site -> the stage its InvariantError must carry
DRIVERS = {
    "parallel.partition.misaligned-split": "parallel.partition",
    "parallel.stitch.torn-chunk": "parallel.stitch",
    "parallel.dispatch.lost-barrier": "parallel.barrier",
}


def workload() -> NestedVector:
    """64 segments of 40 ints each: 2560 flat elements, comfortably past
    MIN_PARALLEL, every segment start a multiple of 40."""
    counts = np.full(64, 40, dtype=INT_DTYPE)
    values = (np.arange(64 * 40, dtype=INT_DTYPE) * 13) % 1000
    descs = (np.array([64], dtype=INT_DTYPE), counts)
    return NestedVector(descs, values, "int")


@pytest.fixture
def engine():
    eng = ParallelEngine(4, native=None)
    yield eng
    if eng._pool is not None:
        eng._pool.shutdown(wait=False)


def test_every_parallel_site_has_a_driver():
    """A new parallel fault site cannot be added without proving it is
    caught (same closure property as tests/guard/test_faults.py)."""
    assert set(DRIVERS) == set(F.PARALLEL_FAULT_SITES)


def test_registries_are_disjoint():
    assert not set(F.PARALLEL_FAULT_SITES) & set(F.FAULT_SITES)
    assert not set(F.PARALLEL_FAULT_SITES) & set(F.PROCESS_FAULT_SITES)


def test_parallel_sites_are_registered():
    for site in F.PARALLEL_FAULT_SITES:
        F.FaultInjector(site)           # accepted
    with pytest.raises(ValueError, match="unknown fault site"):
        F.FaultInjector("parallel.no.such-site")


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_injected_fault_is_caught_with_stage(engine, site):
    v = workload()
    with F.injecting(site, seed=3) as inj:
        with pytest.raises(InvariantError) as ei:
            engine.apply_segmented("sum", v)
    assert inj.fired, f"site {site} never fired"
    assert ei.value.stage == DRIVERS[site], \
        f"expected stage {DRIVERS[site]!r}, got {ei.value.stage!r}"


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_without_injection_runs_clean(engine, site):
    """The same dispatch succeeds — and matches the serial kernel — when
    no injector is armed."""
    v = workload()
    result = engine.apply_segmented("sum", v)
    assert result is not None
    assert np.array_equal(result.values,
                          seg_sum(v.values, v.descs[1]))


@pytest.mark.parametrize("site", sorted(DRIVERS))
def test_injector_is_deterministic(engine, site):
    msgs = []
    for _ in range(2):
        with F.injecting(site, seed=11):
            with pytest.raises(InvariantError) as ei:
                engine.apply_segmented("sum", workload())
        msgs.append(str(ei.value))
    assert msgs[0] == msgs[1]


def test_fused_stitch_is_also_guarded(engine):
    """The torn-chunk site fires on the fused elementwise path too —
    chunk accounting is validated on every parallel dispatch, not just
    the segmented one."""
    n = 4096
    vec = NestedVector((np.array([n], dtype=INT_DTYPE),),
                       np.arange(n, dtype=INT_DTYPE), "int")
    tree = ("prim", "add", (("arg", 0), ("arg", 1)))
    with F.injecting("parallel.stitch.torn-chunk", seed=5) as inj:
        with pytest.raises(InvariantError) as ei:
            engine.apply_fused("__fused0", tree, [vec, vec], [None, None], n)
    assert inj.fired
    assert ei.value.stage == "parallel.stitch"
