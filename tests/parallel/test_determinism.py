"""Parallel float determinism: bit-identical results at every thread
count, on every run.

Floating-point addition does not associate, so the classic parallel-sum
bug is a different answer at a different thread count.  The engine's
contract forbids that by construction — a segment never straddles a
chunk or an OpenMP iteration, so every segment folds in its serial
order and no float operation is ever reassociated (docs/PARALLEL.md).
These tests pin the contract with exact ``==`` on raw float64 bits:
segmented reductions and scans over adversarially-scaled ragged floats,
at thread counts 1 through 8, chunked and OpenMP paths, repeated runs.
"""

import random

import numpy as np
import pytest

from repro import compile_program
from repro.native import toolchain
from repro.parallel import engine as PE
from repro.parallel.engine import ParallelEngine
from repro.vector import segments as S
from repro.vector.nested import NestedVector
from repro.vector.segments import INT_DTYPE

THREAD_COUNTS = (2, 3, 4, 8)
REPEATS = 3


def ragged_floats(seed: int) -> NestedVector:
    """A depth-2 float vector whose segments mix magnitudes (1e-8 .. 1e8)
    so any reassociation of the fold *would* change the sum bits."""
    rng = random.Random(seed)
    counts, vals = [], []
    for _ in range(rng.randrange(40, 120)):
        k = rng.randrange(0, 60)
        counts.append(k)
        vals.extend(rng.uniform(-1.0, 1.0) * 10.0 ** rng.randrange(-8, 9)
                    for _ in range(k))
    counts = np.array(counts, dtype=INT_DTYPE)
    values = np.array(vals, dtype=np.float64)
    descs = (np.array([counts.size], dtype=INT_DTYPE), counts)
    return NestedVector(descs, values, "float")


def serial(name: str, v: NestedVector) -> np.ndarray:
    fn = {"sum": S.seg_sum, "plus_scan": S.seg_plus_scan,
          "max_scan": S.seg_max_scan}[name]
    return fn(v.values, v.descs[1])


@pytest.fixture
def low_min_parallel(monkeypatch):
    monkeypatch.setattr(PE, "MIN_PARALLEL", 8)
    yield
    PE.reset_engines()


@pytest.mark.parametrize("name", ["sum", "plus_scan", "max_scan"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_chunked_floats_bit_identical(low_min_parallel, name, seed):
    """Chunked path: every thread count and every repeat reproduces the
    serial kernel's exact bits."""
    v = ragged_floats(seed)
    want = serial(name, v)
    for threads in THREAD_COUNTS:
        eng = ParallelEngine(threads, native=None)
        try:
            for _ in range(REPEATS):
                got = eng.apply_segmented(name, v)
                assert got is not None
                assert got.values.dtype == want.dtype
                assert np.array_equal(got.values, want), \
                    f"{name} differs at {threads} threads"
        finally:
            if eng._pool is not None:
                eng._pool.shutdown(wait=False)


@pytest.mark.skipif(not (toolchain.available()
                         and toolchain.openmp_available()),
                    reason="no OpenMP toolchain")
@pytest.mark.parametrize("name", ["sum", "plus_scan", "max_scan"])
def test_openmp_floats_bit_identical(low_min_parallel, name):
    """OpenMP path: the compiled multicore kernels reproduce the serial
    bits at every thread count."""
    v = ragged_floats(7)
    want = serial(name, v)
    for threads in THREAD_COUNTS:
        eng = PE.get_parallel_engine(threads)
        assert eng.status()["openmp"]
        for _ in range(REPEATS):
            got = eng.apply_segmented(name, v)
            assert got is not None
            assert np.array_equal(got.values, want), \
                f"{name} differs at {threads} threads (OpenMP)"


def test_full_program_floats_stable_across_thread_counts():
    """End to end through the public API: a segmented float-mean program
    returns the same Python floats at threads 1, 2, 4 and 8, twice
    each."""
    src = ("fun f(v: seq(seq(float))) = "
           "[s <- v: sum(s) * 0.25 + real(#s)]")
    rng = random.Random(42)
    arg = [[rng.uniform(-1.0, 1.0) * 10.0 ** rng.randrange(-6, 7)
            for _ in range(rng.randrange(0, 40))]
           for _ in range(200)]
    prog = compile_program(src)
    want = prog.run("f", [arg], backend="vector")
    for threads in (1, 2, 4, 8):
        for _ in range(2):
            assert prog.run("f", [arg], backend="parallel",
                            threads=threads) == want
