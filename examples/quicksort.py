#!/usr/bin/env python
"""Nested data-parallel quicksort — the paper's motivating example.

Section 1: "a data-parallel sort function can not be applied in parallel to
every sequence in a collection of sequences [in flat languages].  Yet this
is the key step in several parallel divide-and-conquer sorting algorithms."

Here both happen at once: ``qsort`` recurses on *both* partitions through a
single iterator (nested parallelism), and ``qsort_all`` applies the whole
sort to every sequence of a ragged collection.  After flattening, the
simulated step count grows polylogarithmically while total work stays
O(n log n) — the divide-and-conquer claim of the conclusion.

Run:  python examples/quicksort.py [n]
"""

import random
import sys

from repro import compile_program
from repro.machine import VectorMachine

SOURCE = """
fun qsort(s) =
  if #s <= 1 then s
  else let p = s[(#s + 1) div 2],
           less = [x <- s | x < p: x],
           same = [x <- s | x == p: x],
           more = [x <- s | x > p: x],
           sorted = [part <- [less, more]: qsort(part)]
       in concat(concat(sorted[1], same), sorted[2])

fun qsort_all(vv) = [v <- vv: qsort(v)]
"""

# Defaults for ``repro profile examples/quicksort.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "qsort"
PROFILE_ARGS = [[13, 55, 3, 21, 34, 8, 1, 89, 5, 2, 44, 17, 62, 9, 28, 71]]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    rng = random.Random(42)
    data = [rng.randrange(1000) for _ in range(n)]

    prog = compile_program(SOURCE)

    out = prog.run("qsort", [data])
    assert out == sorted(data)
    print(f"qsort of {n} random keys: ok (first 10: {out[:10]})")

    # nested: sort a ragged collection of sequences in one parallel step
    ragged = [[rng.randrange(100) for _ in range(rng.randrange(1, 12))]
              for _ in range(8)]
    outs = prog.run("qsort_all", [ragged])
    assert outs == [sorted(v) for v in ragged]
    print(f"qsort_all over {len(ragged)} ragged sequences: ok")

    # the divide-and-conquer shape: steps grow ~log n, work ~n log n
    print("\n  n    vector-ops    total-work    work/op")
    for size in (16, 64, 256, 1024):
        data = [rng.randrange(10 * size) for _ in range(size)]
        _, trace = prog.vector_trace("qsort", [data])
        work = sum(w for _, w in trace)
        print(f"{size:5d}  {len(trace):10d}  {work:12d}  {work / len(trace):9.1f}")

    print("\nsimulated speedup on the n=1024 sort:")
    for p in (1, 4, 16, 64):
        print(f"  {VectorMachine(processors=p).run_trace(trace)}")


if __name__ == "__main__":
    main()
