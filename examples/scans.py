#!/usr/bin/env python
"""Classic vector-model scan applications (Blelloch's standard demos),
expressed in P and flattened to segmented scans.

* line-of-sight: which terrain points are visible from the origin —
  a running-maximum (max_scan) over angles;
* parenthesis matching: nesting depth and well-formedness via plus_scan;
* per-row running totals of a ragged matrix: the *segmented* scan the
  flattening produces automatically from a nested iterator.

Run:  python examples/scans.py
"""

import random

from repro import compile_program

SOURCE = """
-- line of sight: point i (height h[i] at distance i) is visible iff its
-- "angle" h[i]/i beats every earlier angle.  Using cross-multiplication
-- to stay in integers: angle_i > angle_j  <=>  h[i]*j > h[j]*i.
-- Scaled-angle trick: compare h[i] * K div i against the running max.
fun visible(h) =
  let angles = [i <- [1..#h]: (h[i] * 1000) div i],
      best = max_scan(angles)
  in [i <- [1..#h]: if i == 1 then true else angles[i] >= best[i]]

-- parenthesis matching: v holds +1 for '(' and -1 for ')'
fun depths(v) = [i <- [1..#v]: plus_scan(v)[i] + v[i]]

fun balanced(v) =
  let d = depths(v)
  in if #v == 0 then true
     else alltrue([x <- d: x >= 0]) and d[#v] == 0

-- segmented scans for free: running totals of every row of a ragged matrix
fun running_rows(m) = [row <- m: [i <- [1..#row]: plus_scan(row)[i] + row[i]]]
"""

# Defaults for ``repro profile examples/scans.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "visible"
PROFILE_ARGS = [[3, 1, 4, 1, 5, 9, 2, 6, 5, 3]]


def main() -> None:
    prog = compile_program(SOURCE)
    rng = random.Random(5)

    # line of sight over rolling terrain
    heights = [max(1, int(20 + 15 * rng.random() * (i % 7)))
               for i in range(1, 25)]
    vis = prog.run("visible", [heights])
    angles = [(h * 1000) // i for i, h in enumerate(heights, 1)]
    best = 0
    expect = []
    for i, a in enumerate(angles, 1):
        expect.append(i == 1 or a >= max(best, a))
        best = max(best, a) if i > 1 else a
        expect[-1] = True if i == 1 else a >= max(angles[:i])
    assert vis == expect
    print(f"line of sight: {sum(vis)} of {len(heights)} points visible")

    # parenthesis matching
    for text, want in [("(()())", True), ("(()", False), (")(", False),
                       ("", True), ("((()))", True)]:
        v = [1 if c == "(" else -1 for c in text]
        got = prog.run("balanced", [v])
        assert got == want, (text, got)
        print(f"balanced({text!r:10}) = {got}")

    # segmented running totals
    m = [[rng.randrange(9) for _ in range(rng.randrange(6))] for _ in range(5)]
    rr = prog.run("running_rows", [m])
    want = [[sum(row[:k + 1]) for k in range(len(row))] for row in m]
    assert rr == want
    print(f"running_rows over ragged {[len(r) for r in m]}: ok")

    # all back ends agree
    assert prog.run("running_rows", [m], backend="interp") == rr
    assert prog.run("running_rows", [m], backend="vcode") == rr
    print("interp == vector == vcode  [ok]")


if __name__ == "__main__":
    main()
