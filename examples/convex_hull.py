#!/usr/bin/env python
"""Quickhull — recursive, irregular, nested data-parallelism on tuples.

The classic NESL-lineage demo: each recursion level partitions the point
set by a data-parallel filter and recurses on *both* sub-problems through a
single iterator, so the whole divide-and-conquer tree advances level by
level as flat vector operations.

Run:  python examples/convex_hull.py [n]
"""

import random
import sys

from repro import compile_program

SOURCE = """
fun cross(o: (int, int), a: (int, int), b: (int, int)) =
  (a.1 - o.1) * (b.2 - o.2) - (a.2 - o.2) * (b.1 - o.1)

-- hull points strictly left of segment a->b, in hull order, starting at a
fun hull_side(a: (int, int), b: (int, int), pts: seq((int, int))) =
  let left = [p <- pts | cross(a, b, p) > 0: p]
  in if #left == 0 then [a]
     else let ds = [p <- left: cross(a, b, p)],
              far = left[index_of(maxval(ds), ds)],
              segs = [(a, far), (far, b)],
              sub = [s <- segs: hull_side(s.1, s.2, left)]
          in flatten(sub)

fun quickhull(pts: seq((int, int))) =
  let xs = [p <- pts: p.1],
      a = pts[index_of(minval(xs), xs)],
      b = pts[index_of(maxval(xs), xs)],
      halves = [s <- [(a, b), (b, a)]: hull_side(s.1, s.2, pts)]
  in flatten(halves)
"""

# Defaults for ``repro profile examples/convex_hull.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "quickhull"
PROFILE_ARGS = [[(0, 0), (4, 1), (2, 5), (7, 3), (5, 6), (1, 2), (6, 0), (3, 3), (8, 4), (2, 1)]]


def py_cross(o, a, b):
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def py_hull_side(a, b, pts):
    left = [p for p in pts if py_cross(a, b, p) > 0]
    if not left:
        return [a]
    # match P's index_of: first occurrence of the maximum distance
    ds = [py_cross(a, b, p) for p in left]
    far = left[ds.index(max(ds))]
    return py_hull_side(a, far, left) + py_hull_side(far, b, left)


def py_quickhull(pts):
    xs = [p[0] for p in pts]
    a = pts[xs.index(min(xs))]
    b = pts[xs.index(max(xs))]
    return py_hull_side(a, b, pts) + py_hull_side(b, a, pts)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    rng = random.Random(17)
    pts = list({(rng.randrange(-500, 500), rng.randrange(-500, 500))
                for _ in range(n)})

    prog = compile_program(SOURCE)
    hull = prog.run("quickhull", [pts])
    expect = py_quickhull(pts)
    assert hull == expect, (hull, expect)

    print(f"quickhull of {len(pts)} points -> {len(hull)} hull vertices: ok")
    print(f"  first vertices: {hull[:6]}")

    _res, trace = prog.vector_trace("quickhull", [pts])
    print(f"  vector ops: {len(trace)}, elements processed: "
          f"{sum(w for _o, w in trace)}")

    from repro.machine import VectorMachine
    for p in (1, 16):
        print(f"  {VectorMachine(processors=p).run_trace(trace)}")


if __name__ == "__main__":
    main()
