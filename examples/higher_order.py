#!/usr/bin/env python
"""Higher-order data-parallel style — the abstract's "translation of
function values (which are critical elements of the higher-order
data-parallel style)".

Shows: function values as arguments (map/filter/reduce), lambdas, function
*tables* (sequences of functions), per-element function selection (frames
holding different functions execute by group dispatch), and key-based
sorting via the rank/permute CVL primitives.

Run:  python examples/higher_order.py
"""

from repro import FunVal, compile_program

SOURCE = """
-- a tiny statistics toolkit built from higher-order pieces
fun mean(v) = sum(v) div #v

fun spread(v) = maxval(v) - minval(v)

fun stats_table(vv) =
  [v <- vv: [f <- [sum, maxval, minval]: f(v)]]

-- per-element function selection: clamp negatives, square small, halve big
fun shape(x) =
  (if x < 0 then neg else if x < 10 then sq else halve)(x)

fun sq(x) = x * x
fun halve(x) = x div 2
fun shape_all(v) = [x <- v: shape(x)]

-- NOTE: a lambda capturing x (e.g. fn(acc, c) => acc * x + c) is rejected:
-- P function values must be fully parameterized.  Evaluate the polynomial
-- as a parallel power sum instead.
fun pow(b, e) = if e == 0 then 1 else b * pow(b, e - 1)
fun polyval(coeffs, x) =
  sum([i <- [1..#coeffs]: coeffs[i] * pow(x, #coeffs - i)])
"""

# Defaults for ``repro profile examples/higher_order.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "shape_all"
PROFILE_ARGS = [[-5, 3, 12, 7, -1, 20, 4, 9]]


def main() -> None:
    prog = compile_program(SOURCE)

    vv = [[3, 1, 4, 1, 5], [9, 2, 6], [5, 3]]
    table = prog.run("stats_table", [vv])
    print("stats_table (rows x [sum, max, min]):")
    for row, t in zip(vv, table):
        print(f"  {row!r:24} -> {t}")
    assert table == [[sum(v), max(v), min(v)] for v in vv]

    v = [-5, 3, 12, -1, 7, 40]
    shaped = prog.run("shape_all", [v])
    print(f"\nshape_all({v}) = {shaped}")
    assert shaped == [5, 9, 6, 1, 49, 20]

    # Horner: 2x^2 + 3x + 4 at x = 10  ->  234
    got = prog.run("polyval", [[2, 3, 4], 10])
    print(f"polyval([2,3,4], 10) = {got}")
    assert got == 234

    # prelude higher-order functions with entry-supplied function values
    print("\nmap/filter with entry-supplied function values:")
    doubled = prog.run("map_p", [FunVal("neg"), [1, 2, 3]],
                       types=["(int) -> int", "seq(int)"])
    odds = prog.run("filter_p", [FunVal("odd"), list(range(10))],
                    types=["(int) -> bool", "seq(int)"])
    print(f"  map_p(neg, [1,2,3])     = {doubled}")
    print(f"  filter_p(odd, 0..9)     = {odds}")

    # sorting by derived keys (rank/permute primitives)
    words = [(3, 300), (1, 100), (2, 200)]  # (key, payload)
    sorted_payloads = prog.run(
        "sort_by", [[k for k, _ in words], [p for _, p in words]])
    print(f"  sort_by keys            = {sorted_payloads}")
    assert sorted_payloads == [100, 200, 300]

    # everything above agrees with the reference interpreter
    assert prog.run("stats_table", [vv], backend="interp") == table
    assert prog.run("shape_all", [v], backend="interp") == shaped
    print("\nall results match the reference interpreter [ok]")


if __name__ == "__main__":
    main()
