#!/usr/bin/env python
"""Word-frequency histogram over integer-coded tokens.

The classic "count occurrences" pipeline, entirely in P: sort the tokens
with the rank/permute CVL primitives, find the distinct values, and count
each one with a nested data-parallel comparison sweep — then rank the
result by descending frequency.  Irregular, data-dependent sizes all the
way through: exactly what flat data-parallel languages cannot express.

Run:  python examples/histogram.py [n]
"""

import collections
import random
import sys

from repro import compile_program

SOURCE = """
-- (token, count) for each distinct token, in first-seen-in-sorted order
fun histogram(v) =
  [u <- unique(v): (u, count([x <- v: x == u]))]

-- order the histogram by descending count (stable)
fun by_frequency(v) =
  let h = histogram(v),
      counts = [p <- h: 0 - p.2],
      toks = [p <- h: p.1],
      cnts = [p <- h: p.2]
  in zip2(sort_by(counts, toks), sort_by(counts, cnts))

fun most_common(v) = by_frequency(v)[1]
"""

# Defaults for ``repro profile examples/histogram.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "by_frequency"
PROFILE_ARGS = [[3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3]]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    rng = random.Random(31)
    # zipf-ish token stream over a small vocabulary
    vocab = list(range(1, 21))
    weights = [1.0 / k for k in vocab]
    tokens = rng.choices(vocab, weights=weights, k=n)

    prog = compile_program(SOURCE)

    hist = prog.run("histogram", [tokens])
    want = collections.Counter(tokens)
    assert dict(hist) == dict(want)
    print(f"histogram of {n} tokens over {len(want)} distinct values: ok")

    ranked = prog.run("by_frequency", [tokens])
    py_ranked = sorted(want.items(), key=lambda p: (-p[1], None))
    assert ranked[0][1] == py_ranked[0][1]
    print("top 5 by frequency:", ranked[:5])

    top = prog.run("most_common", [tokens])
    assert top == ranked[0]
    print(f"most common token: {top[0]} ({top[1]} occurrences)")

    # all three back ends agree
    assert prog.run("histogram", [tokens], backend="interp") == hist
    assert prog.run("histogram", [tokens], backend="vcode") == hist
    print("interp == vector == vcode  [ok]")


if __name__ == "__main__":
    main()
