#!/usr/bin/env python
"""Sparse matrix-vector multiply: irregular nested parallelism + the
section-4.5 shared-argument optimization.

The matrix is a ragged nested sequence of (column, value) pairs — exactly
the aggregate flat data-parallel languages cannot express (section 1).  The
inner dot product indexes the shared dense vector ``x``: because ``x`` is
fixed relative to the surrounding iterators, the transformation leaves it
*unreplicated* (the paper's seq_index optimization), which you can see in
the transformed source as ``__seq_index_shared``.

Run:  python examples/spmv.py [rows]
"""

import random
import sys

from repro import compile_program
from repro.machine import VectorMachine

SOURCE = """
-- rows of (column-index, value) pairs; x a dense vector
fun spmv(rows: seq(seq((int, int))), x: seq(int)) =
  [row <- rows: sum([e <- row: e.2 * x[e.1]])]
"""

# Defaults for ``repro profile examples/spmv.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "spmv"
PROFILE_ARGS = [[[(1, 2), (3, -1)], [(2, 4), (4, 1)], [], [(1, 1), (2, 1), (4, 3)]],
                [5, -2, 7, 1]]


def random_sparse(n: int, density: float, rng: random.Random):
    rows = []
    for _ in range(n):
        nnz = max(0, int(rng.gauss(density * n, density * n / 2)))
        cols = rng.sample(range(1, n + 1), min(nnz, n))
        rows.append([(c, rng.randrange(-9, 10)) for c in sorted(cols)])
    return rows


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    rng = random.Random(7)
    rows = random_sparse(n, 0.15, rng)
    x = [rng.randrange(-5, 6) for _ in range(n)]

    prog = compile_program(SOURCE)
    y = prog.run("spmv", [rows, x])

    # NumPy-free oracle
    expect = [sum(v * x[c - 1] for c, v in row) for row in rows]
    assert y == expect
    nnz = sum(len(r) for r in rows)
    print(f"spmv: {n}x{n}, {nnz} nonzeros: ok (y[:8] = {y[:8]})")

    print("\ntransformed program (note __seq_index_shared — section 4.5):")
    print(prog.transformed_source("spmv", [rows, x]))

    _, trace = prog.vector_trace("spmv", [rows, x])
    print("\nsimulated machine (flattened execution):")
    for p in (1, 8, 32):
        print(f"  {VectorMachine(processors=p).run_trace(trace)}")


if __name__ == "__main__":
    main()
