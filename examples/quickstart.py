#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Compiles the section-5 program ``[k <- [1..5]: sqs(k)]``, shows the
transformed (iterator-free) form, the generated CVL-style C, runs it on all
three back ends, and prints the machine-independent work/span measurements.

Run:  python examples/quickstart.py [N]
"""

import sys

from repro import compile_program

SOURCE = """
fun sqs(n) = [j <- [1..n]: j * j]

-- the paper's top-level expression [k <- [1..5]: sqs(k)], as a function
fun main(k) = [i <- [1..k]: sqs(i)]
"""

# Defaults for ``repro profile examples/quickstart.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "main"
PROFILE_ARGS = [12]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    prog = compile_program(SOURCE)

    print("== source (P) ==")
    print(SOURCE)

    print("== result ==")
    result = prog.run("main", [n])
    print(f"main({n}) = {result}")

    print("\n== back-end agreement ==")
    assert prog.run("main", [n], backend="interp") == result
    assert prog.run("main", [n], backend="vcode") == result
    print("interp == vector == vcode  [ok]")

    print("\n== transformed, iterator-free program (section 3) ==")
    print(prog.transformed_source("main", [n]))

    print("\n== generated CVL-style C (section 5) ==")
    print(prog.emit_c("main", ["int"]))

    print("== machine-independent measurements (work/span) ==")
    _, cost = prog.measure("main", [n])
    print(f"  {cost}")

    print("\n== the result's vector representation (paper Figure 1) ==")
    from repro.lang.types import INT, seq_of
    from repro.vector.convert import from_python
    from repro.vector.display import show
    print(show(from_python(result, seq_of(INT, 2))))

    print("\n== vector-op trace -> simulated machine ==")
    _, trace = prog.vector_trace("main", [n])
    from repro.machine import VectorMachine
    for p in (1, 4, 16):
        print(f"  {VectorMachine(processors=p).run_trace(trace)}")


if __name__ == "__main__":
    main()
