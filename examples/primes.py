#!/usr/bin/env python
"""Nested-parallel prime sieve via filtered iterators.

``primes`` applies the data-parallel predicate ``isprime`` (itself a
reduction over a parallel iterator) to every candidate in parallel — the
"data-parallel application of a function which is itself data-parallel"
that flat languages cannot express (section 1).  The filtered-iterator form
``[i <- [1..n] | isprime(i): i]`` is the section-2 derived construct.

Run:  python examples/primes.py [n]
"""

import sys

from repro import compile_program

SOURCE = """
fun isprime(n) =
  if n < 2 then false
  else alltrue([d <- [2 .. n - 1]: n mod d != 0])

fun primes(n) = [i <- [1..n] | isprime(i): i]

-- a second-order use: primes of primes (twin candidates)
fun twins(n) =
  [p <- primes(n) | isprime(p + 2): (p, p + 2)]
"""

# Defaults for ``repro profile examples/primes.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "primes"
PROFILE_ARGS = [100]


def sieve(n):
    flags = [True] * (n + 1)
    out = []
    for i in range(2, n + 1):
        if flags[i]:
            out.append(i)
            for j in range(i * i, n + 1, i):
                flags[j] = False
    return out


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    prog = compile_program(SOURCE)

    ps = prog.run("primes", [n])
    assert ps == sieve(n)
    print(f"primes up to {n}: {ps}")

    tw = prog.run("twins", [n])
    print(f"twin prime pairs: {tw}")

    _, cost = prog.measure("primes", [n])
    print(f"\nwork/span on the reference interpreter: {cost}")
    print("(span stays flat as n grows: every candidate is tested in parallel,")
    print(" and each test is itself a parallel reduction)")


if __name__ == "__main__":
    main()
