#!/usr/bin/env python
"""All-pairs N-body gravity step — dense nested data-parallelism on floats.

Each body's acceleration is a parallel reduction over a parallel iteration
across all other bodies: an O(n^2) doubly-nested data-parallel computation
that flattens to a handful of wide vector operations.  Uses the Float
scalar extension (the paper: "Extension of this last restriction should be
relatively simple").

Float results agree with the reference interpreter bit for bit: both back
ends perform the same IEEE double operations in the same order.

Run:  python examples/nbody.py [n] [steps]
"""

import random
import sys

from repro import compile_program

SOURCE = """
-- bodies: (x, y) positions; equal masses; softened gravity
fun accel_on(i, xs: seq(float), ys: seq(float)) =
  let ax = sum([j <- [1..#xs]: force1(xs[i], ys[i], xs[j], ys[j], 1)]),
      ay = sum([j <- [1..#xs]: force1(xs[i], ys[i], xs[j], ys[j], 2)])
  in (ax, ay)

-- component c of the (softened) inverse-square attraction of (bx,by) on (ax,ay)
fun force1(ax: float, ay: float, bx: float, by: float, c) =
  let dx = bx - ax,
      dy = by - ay,
      r2 = dx * dx + dy * dy + 0.01,
      inv = fdiv(1.0, r2 * sqrt_(r2))
  in if c == 1 then dx * inv else dy * inv

fun step(xs: seq(float), ys: seq(float), vxs: seq(float), vys: seq(float),
         dt: float) =
  let acc = [i <- [1..#xs]: accel_on(i, xs, ys)],
      nvx = [i <- [1..#xs]: vxs[i] + dt * acc[i].1],
      nvy = [i <- [1..#xs]: vys[i] + dt * acc[i].2],
      nx  = [i <- [1..#xs]: xs[i] + dt * nvx[i]],
      ny  = [i <- [1..#xs]: ys[i] + dt * nvy[i]]
  in (nx, ny, nvx, nvy)

fun energy(xs: seq(float), ys: seq(float), vxs: seq(float), vys: seq(float)) =
  sum([i <- [1..#xs]: 0.5 * (vxs[i] * vxs[i] + vys[i] * vys[i])])
"""

# Defaults for ``repro profile examples/nbody.py`` (see docs/OBSERVABILITY.md).
PROFILE_ENTRY = "step"
PROFILE_ARGS = [[0.0, 1.0, 2.0, 3.5, -1.0, 0.5], [0.5, -1.0, 1.5, 0.0, 2.0, -0.5],
                [0.0, 0.0, 0.0, 0.0, 0.0, 0.0], [0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 0.01]


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    steps = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    rng = random.Random(99)
    xs = [rng.uniform(-1, 1) for _ in range(n)]
    ys = [rng.uniform(-1, 1) for _ in range(n)]
    vxs = [0.0] * n
    vys = [0.0] * n

    prog = compile_program(SOURCE)
    types = ["seq(float)"] * 4 + ["float"]

    state = (xs, ys, vxs, vys)
    for s in range(steps):
        state = prog.run("step", [*state, 0.001], types=types)
        ke = prog.run("energy", [*state], types=types[:4])
        print(f"step {s + 1}: kinetic energy = {ke:.6f}")

    # bitwise agreement with the reference interpreter
    ref = prog.run("step", [xs, ys, vxs, vys, 0.001], types=types,
                   backend="interp")
    vec = prog.run("step", [xs, ys, vxs, vys, 0.001], types=types)
    assert ref == vec, "backends disagree"
    print(f"\n{n} bodies, {steps} steps: vector == interpreter bit-for-bit [ok]")

    _res, trace = prog.vector_trace("step", [xs, ys, vxs, vys, 0.001],
                                    types=types)
    from repro.machine import VectorMachine
    print(f"vector ops per step: {len(trace)} "
          f"(total elements {sum(w for _o, w in trace)})")
    for p in (1, 32):
        print(f"  {VectorMachine(processors=p).run_trace(trace)}")


if __name__ == "__main__":
    main()
