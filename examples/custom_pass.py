#!/usr/bin/env python
"""Writing your own pass: an identity-peephole (x + 0 -> x, x * 1 -> x).

This is the runnable version of the tutorial in docs/PASSES.md.  It
defines one :class:`RewritePattern`, wraps it in a registered
:class:`Pass` that declares *where* in the pipeline it is legal (after
R2's iterator elimination), and runs it by spelling the pass list out in
``TransformOptions(passes=...)`` — the same surface as
``repro run FILE --passes "canonical,eliminate,optimize,simplify,peephole"``.

Run:  python examples/custom_pass.py
"""

from repro import TransformOptions, compile_program
from repro.lang import ast as A
from repro.passes.base import Pass
from repro.passes.invariants import ITERATOR_FREE
from repro.passes.pattern import RewritePattern, greedy_rewrite
from repro.passes.registry import register

SOURCE = """
fun poly(v) = [x <- v: (x + 0) * 1 + x * (1 * x)]
"""

PROFILE_ENTRY = "poly"
PROFILE_ARGS = [[1, 2, 3, 4, 5]]

#: identity element of each peephole-eligible primitive
IDENTITIES = {"add": 0, "mul": 1}


class IdentityElimPattern(RewritePattern):
    """``add^d(x, 0) -> x`` and ``mul^d(x, 1) -> x`` (and the mirrored
    operand order).

    The transformed IR applies primitives as depth-``d`` parallel
    extensions (``ExtCall``), so the rewrite must preserve the depth
    discipline: the kept operand has to carry the full frame
    (``arg_depths[i] == depth``) — a broadcast scalar plus identity is
    *not* replaceable by the scalar alone.  The ``peephole`` pass's
    postcondition (the default transformed-IR verifier) re-checks this.
    """

    def match_and_rewrite(self, e):
        """Fire on a binary primitive extension with an identity operand."""
        if not (isinstance(e, A.ExtCall) and e.fn in IDENTITIES
                and len(e.args) == 2):
            return None
        ident = IDENTITIES[e.fn]
        depths = e.arg_depths or [e.depth, e.depth]
        for keep, drop in ((0, 1), (1, 0)):
            lit = e.args[drop]
            if (isinstance(lit, A.IntLit) and lit.value == ident
                    and depths[keep] == e.depth):
                return self.copy_meta(e.args[keep], e)
        return None


@register
class PeepholePass(Pass):
    """The tutorial pass: greedy identity elimination over every
    transformed definition.  Declaring ``requires = {ITERATOR_FREE}``
    makes the manager reject any pipeline that lists ``peephole`` before
    ``eliminate`` — ordering errors surface before anything runs."""

    name = "peephole"
    requires = frozenset({ITERATOR_FREE})
    description = "eliminate identity operations (x+0, x*1)"

    def run(self, ctx):
        """Rewrite each definition to an identity-free fixpoint."""
        for d in ctx.defs.values():
            d.body = greedy_rewrite(d.body, [IdentityElimPattern()])


def count_prims(defs):
    return sum(1 for d in defs.values() for e in A.walk(d.body)
               if isinstance(e, A.ExtCall) and e.fn in IDENTITIES)


def main() -> None:
    args = PROFILE_ARGS

    plain = compile_program(SOURCE)
    with_peephole = compile_program(SOURCE, options=TransformOptions(
        passes=("canonical", "eliminate", "optimize", "simplify",
                "peephole")))

    print("== transformed, default pipeline ==")
    print(plain.transformed_source(PROFILE_ENTRY, args))
    print()
    print("== transformed, + peephole pass ==")
    print(with_peephole.transformed_source(PROFILE_ENTRY, args))
    print()

    before = count_prims(plain.prepare(
        PROFILE_ENTRY, plain.entry_types(PROFILE_ENTRY, args))[1].defs)
    after = count_prims(with_peephole.prepare(
        PROFILE_ENTRY,
        with_peephole.entry_types(PROFILE_ENTRY, args))[1].defs)
    print(f"add/mul applications: {before} -> {after}")

    out = with_peephole.run(PROFILE_ENTRY, args)
    ref = plain.run(PROFILE_ENTRY, args, backend="interp")
    assert out == ref, (out, ref)
    print(f"poly({args[0]}) = {out}   (matches the reference interpreter)")


if __name__ == "__main__":
    main()
