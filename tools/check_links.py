#!/usr/bin/env python
"""Check relative markdown links across the repository's *.md files.

A link is checked when it is a standard inline markdown link
``[text](target)`` whose target is a relative path — external schemes
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
skipped; an anchor suffix on a file target is stripped before checking.

Usable as a library (``find_broken``) by the test suite and as a script
by CI: exits 1 listing any broken links.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SKIP_DIRS = {".git", ".venv", "node_modules", "__pycache__", ".pytest_cache"}

#: Vendored retrieval artifacts whose asset links were never part of
#: this repository.
SKIP_FILES = {"PAPERS.md", "SNIPPETS.md"}

_EXTERNAL = ("http://", "https://", "mailto:")


def _markdown_files(root: Path) -> list[Path]:
    return sorted(p for p in root.rglob("*.md")
                  if p.name not in SKIP_FILES
                  and not any(part in SKIP_DIRS for part in p.parts))


def find_broken(root: str | Path) -> list[tuple[str, str]]:
    """All broken relative links under ``root`` as (file, target) pairs."""
    root = Path(root)
    broken: list[tuple[str, str]] = []
    for md in _markdown_files(root):
        for target in LINK_RE.findall(md.read_text(encoding="utf-8")):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (md.parent / path).exists():
                broken.append((str(md.relative_to(root)), target))
    return broken


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    root = Path(args[0]) if args else Path(".")
    broken = find_broken(root)
    for fname, target in broken:
        print(f"broken link in {fname}: {target}")
    if broken:
        print(f"{len(broken)} broken link(s)")
        return 1
    print(f"all relative markdown links resolve under {root.resolve()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
