#!/usr/bin/env python
"""Chaos smoke for the supervised worker pool: a mixed workload under
seeded process-fault injection at every registered ``pool.worker.*``
site, with the three containment claims asserted end to end —

* **no contamination**: every successful response carries exactly the
  value a fault-free run would have produced;
* **typed failure**: every unsuccessful request resolves with a typed
  error naming it (``WorkerCrashError`` / ``ResourceLimitError``), never
  a hang or an untyped exception;
* **recovery**: the pool is back to its full worker count at the end,
  and still serves.

Run by the CI ``chaos-smoke`` job; usable locally:

    python tools/chaos_smoke.py [N_REQUESTS] [REPORT_PATH]

Writes a JSON report (default ``chaos_report.json``) with the outcome
mix, per-site crash counts, and the pool statistics.
"""

from __future__ import annotations

import json
import sys
import time

sys.path.insert(0, "src")

from repro.errors import ReproError, ResourceLimitError, WorkerCrashError
from repro.guard import PROCESS_FAULT_SITES, ChaosSpec
from repro.serve import PoolConfig, RetryPolicy, WorkerPool

SQUARES = "fun main(n) = sum([i <- [1..n]: i * i])"
SCALE = "fun main(s) = [x <- s: x * {k} + 1];"

WORKERS = 3


def expect_squares(n: int) -> int:
    return sum(i * i for i in range(1, n + 1))


def build_workload(count: int) -> list[tuple[str, str, list, object]]:
    """(rid, source, args, expected) tuples; sources cycle over several
    batch keys so the run exercises coalesced batches, not just
    singletons."""
    work = []
    for k in range(count):
        if k % 2 == 0:
            work.append((f"c{k}", SQUARES, [k % 25],
                         expect_squares(k % 25)))
        else:
            s = list(range(k % 7 + 1))
            m = k % 5 + 2
            work.append((f"c{k}", SCALE.format(k=m), [s],
                         [x * m + 1 for x in s]))
    return work


def forced_victims(spec: ChaosSpec) -> list[tuple[str, str]]:
    """One request id per registered site that is guaranteed to fire,
    each with a unique source (its own batch key, so it leads its own
    group and rolls its own dice) — the smoke covers *every* site on
    every run, whatever the random workload happens to draw."""
    victims = []
    for j, site in enumerate(sorted(PROCESS_FAULT_SITES)):
        rid = next(r for i in range(100000)
                   if spec.fires(site, r := f"f{j}x{i}")
                   and not any(spec.fires(s, r) for s in spec.sites
                               if s != site))
        victims.append((rid, f"fun main(x) = x * x + {1000 + j};"))
    return victims


def main(argv: list[str]) -> int:
    count = int(argv[0]) if argv else 200
    report_path = argv[1] if len(argv) > 1 else "chaos_report.json"
    spec = ChaosSpec(sites=tuple(PROCESS_FAULT_SITES), seed=7, rate=0.05,
                     stall_s=60.0, slow_s=60.0)
    cfg = PoolConfig(workers=WORKERS, max_batch=8, native_after=0,
                     retry=RetryPolicy(max_retries=1, base_backoff_s=0.05),
                     heartbeat_s=0.1, heartbeat_timeout_s=1.0,
                     deadline_grace_s=0.2, respawn_backoff_s=0.05,
                     chaos=spec)
    work = build_workload(count)
    t0 = time.monotonic()
    outcome = {"ok": 0, "crash": 0, "timeout": 0}
    failures: list[str] = []

    with WorkerPool(cfg) as pool:
        futs = {}
        for rid, src, args, want in work:
            # a deadline on every request keeps slow-compile wedges
            # bounded: the supervisor kills past deadline + grace
            futs[rid] = (pool.submit(src, "main", args, request_id=rid,
                                     deadline_s=20.0), want)
        for j, (rid, src) in enumerate(forced_victims(spec)):
            futs[rid] = (pool.submit(src, "main", [3], request_id=rid,
                                     deadline_s=20.0), 9 + 1000 + j)

        for rid, (fut, want) in futs.items():
            try:
                got = fut.result(timeout=300.0)
            except WorkerCrashError as e:
                outcome["crash"] += 1
                if rid not in e.request_ids:
                    failures.append(
                        f"{rid}: crash error does not name it: {e}")
            except ResourceLimitError as e:
                outcome["timeout"] += 1
                if e.request != rid:
                    failures.append(
                        f"{rid}: timeout error does not name it: {e}")
            except ReproError as e:
                failures.append(f"{rid}: unexpected typed error: {e}")
            except Exception as e:  # noqa: BLE001 - the claim under test
                failures.append(f"{rid}: UNTYPED leak {type(e).__name__}: {e}")
            else:
                outcome["ok"] += 1
                if got != want:
                    failures.append(
                        f"{rid}: CONTAMINATED result {got!r} != {want!r}")

        # recovery: full strength again, and still serving
        deadline = time.monotonic() + 30
        while (pool.healthy_workers() < WORKERS
               and time.monotonic() < deadline):
            time.sleep(0.1)
        healthy = pool.healthy_workers()
        if healthy < WORKERS:
            failures.append(f"no recovery: {healthy}/{WORKERS} healthy")
        probe_rid = next(r for i in range(100000)
                         if not any(spec.fires(s, r := f"probe{i}")
                                    for s in spec.sites))
        probe = pool.submit("fun main(x) = x + 1;", "main", [41],
                            request_id=probe_rid).result(timeout=60.0)
        if probe != 42:
            failures.append(f"post-chaos probe returned {probe!r}")
        stats = pool.stats.snapshot()

    sites_hit = sorted(stats["crashes"])
    if len(sites_hit) < 4:
        failures.append(f"only {sites_hit} fault kinds observed; "
                        "expected all four sites to fire")

    report = {
        "requests": len(futs),
        "workers": WORKERS,
        "chaos": {"sites": list(spec.sites), "seed": spec.seed,
                  "rate": spec.rate},
        "outcomes": outcome,
        "crashes_by_reason": stats["crashes"],
        "stats": stats,
        "healthy_at_end": healthy,
        "duration_s": round(time.monotonic() - t0, 2),
        "failures": failures,
    }
    with open(report_path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)

    for line in failures:
        print(f"FAIL: {line}")
    print(f"chaos smoke {'FAILED' if failures else 'OK'}: "
          f"{report['requests']} requests -> {outcome['ok']} ok, "
          f"{outcome['crash']} crash, {outcome['timeout']} timeout; "
          f"crashes by reason {stats['crashes']}; "
          f"{stats['restarts']} restarts, {stats['retries']} retries; "
          f"{healthy}/{WORKERS} healthy after "
          f"{report['duration_s']}s (report: {report_path})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
