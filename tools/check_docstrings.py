#!/usr/bin/env python
"""Docstring lint for the transformation layers.

Checks, over ``src/repro/transform`` and ``src/repro/passes``:

* every module has a docstring;
* every *public* top-level class and function, and every public method
  of a public class, has a docstring (names starting with ``_`` are
  private; ``__dunder__`` methods are exempt);
* every module's documentation (module docstring plus its public
  classes'/functions' docstrings) anchors the code to the paper: at
  least one rule reference — ``R0``, ``R1``, ``R2``/``R2a``–``R2f``,
  ``T1`` — or a section reference (``§4.5``, ``§6``, "section 4.5", ...)
  must appear, so a reader can always get from a transformation module
  back to the rule it implements.

Usable as a library (``find_violations``) by the test suite and as a
script by CI: exits 1 listing any violations.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

CHECKED_PACKAGES = ("src/repro/transform", "src/repro/passes")

#: paper-rule anchors: transformation rules R0/R1/R2(a-f), lemma T1, and
#: section references in either spelling
ANCHOR_RE = re.compile(r"\bR[0-2][a-f]?\b|\bT1\b|§\s*\d|[Ss]ection\s+\d")


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _doc(node) -> str:
    return ast.get_docstring(node) or ""


def _check_function(path, cls, fn, violations):
    label = f"{cls.name}.{fn.name}" if cls else fn.name
    if fn.name.startswith("__") and fn.name.endswith("__"):
        return
    if not _is_public(fn.name):
        return
    if not _doc(fn):
        violations.append((str(path), fn.lineno,
                           f"public function {label!r} has no docstring"))


def check_file(path: Path) -> tuple[list[tuple[str, int, str]], str]:
    """Lint one module; returns (violations, all public documentation
    text) — the caller applies the paper-anchor check to the text."""
    tree = ast.parse(path.read_text(), filename=str(path))
    violations: list[tuple[str, int, str]] = []
    texts = [_doc(tree)]
    if not _doc(tree):
        violations.append((str(path), 1, "module has no docstring"))
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _check_function(path, None, node, violations)
            texts.append(_doc(node))
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if not _doc(node):
                violations.append((str(path), node.lineno,
                                   f"public class {node.name!r} has no "
                                   "docstring"))
            texts.append(_doc(node))
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    _check_function(path, node, sub, violations)
                    texts.append(_doc(sub))
    return violations, "\n".join(texts)


def find_violations(root: str | Path) -> list[tuple[str, int, str]]:
    """All docstring-lint violations under ``root`` as
    (file, line, message) triples."""
    root = Path(root)
    out: list[tuple[str, int, str]] = []
    for pkg in CHECKED_PACKAGES:
        for path in sorted((root / pkg).glob("*.py")):
            violations, text = check_file(path)
            out.extend(violations)
            if path.name != "__init__.py" and not ANCHOR_RE.search(text):
                out.append((str(path), 1,
                            "module documentation never anchors to a "
                            "paper rule (R0/R1/R2a-R2f/T1/§4.5/...)"))
    return out


def main() -> int:
    root = Path(__file__).resolve().parents[1]
    violations = find_violations(root)
    for f, line, msg in violations:
        print(f"{f}:{line}: {msg}")
    if violations:
        print(f"{len(violations)} docstring violation(s)")
        return 1
    print("docstring lint: all public APIs documented and rule-anchored")
    return 0


if __name__ == "__main__":
    sys.exit(main())
