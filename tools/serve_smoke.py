#!/usr/bin/env python
"""Smoke-test ``repro serve`` end to end: start the real CLI process,
fire a mixed workload of requests at it over the JSONL protocol, and
assert every response is correct, in order, and that the compile cache
actually deduplicated compilation (hit-rate > 0.9).

Run by the CI ``serve-smoke`` job; usable locally:

    python tools/serve_smoke.py [N_REQUESTS]
"""

from __future__ import annotations

import json
import subprocess
import sys

#: Two programs alternating across the workload — the cache must serve
#: every request after the first two compiles.
SQUARES = "fun main(n) = sum([i <- [1..n]: i * i])"
EVENS = "fun main(s) = [x <- s | x mod 2 == 0: x * x]"


def expect_squares(n: int) -> int:
    return sum(i * i for i in range(1, n + 1))


def expect_evens(s: list[int]) -> list[int]:
    return [x * x for x in s if x % 2 == 0]


def build_workload(count: int) -> tuple[list[dict], list]:
    requests, expected = [], []
    for k in range(count):
        if k % 2 == 0:
            requests.append({"id": k, "source": SQUARES, "args": [k % 30]})
            expected.append(expect_squares(k % 30))
        else:
            s = list(range(-(k % 7), k % 11))
            requests.append({"id": k, "source": EVENS, "args": [s],
                             "types": ["seq(int)"]})
            expected.append(expect_evens(s))
    return requests, expected


def main(argv: list[str]) -> int:
    count = int(argv[0]) if argv else 100
    requests, expected = build_workload(count)
    payload = "".join(json.dumps(r) + "\n" for r in requests)

    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "--stats", "--max-batch",
         "32"],
        input=payload, capture_output=True, text=True, timeout=300)
    print(proc.stderr, end="", file=sys.stderr)
    if proc.returncode != 0:
        print(f"serve exited {proc.returncode}")
        return 1

    lines = proc.stdout.splitlines()
    if len(lines) != count:
        print(f"expected {count} responses, got {len(lines)}")
        return 1
    failures = 0
    for k, (line, want) in enumerate(zip(lines, expected)):
        resp = json.loads(line)
        if resp.get("id") != k:
            print(f"response {k} out of order: {resp}")
            failures += 1
        elif not resp.get("ok") or resp.get("result") != want:
            print(f"request {k}: got {resp}, want result {want!r}")
            failures += 1
    if failures:
        print(f"{failures} bad response(s) out of {count}")
        return 1

    # --stats reports "cache hit-rate 0.98 (98/100, 2 entries)" on stderr
    stats = proc.stderr
    marker = "cache hit-rate "
    if marker not in stats:
        print("no cache stats line on stderr")
        return 1
    hit_rate = float(stats.split(marker, 1)[1].split()[0])
    if hit_rate <= 0.9:
        print(f"cache hit-rate {hit_rate} <= 0.9 "
              "(compilation was not deduplicated)")
        return 1
    print(f"serve smoke OK: {count} requests, all correct and in order, "
          f"cache hit-rate {hit_rate}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
